package routing

import (
	"fmt"
	"math/rand"
	"testing"

	"heteronoc/internal/topology"
)

// testMeshes are the grid shapes the builder equivalence tests sweep:
// degenerate, non-square (both orientations), the paper's 8x8, and a
// large mesh the analytic builder is supposed to make cheap.
func testMeshes() []*topology.Mesh {
	return []*topology.Mesh{
		topology.NewMesh(2, 2),
		topology.NewMesh(3, 5),
		topology.NewMesh(5, 3),
		topology.NewMesh(4, 8),
		topology.NewMesh(8, 8),
		topology.NewMesh(16, 16),
	}
}

// bigSets returns deterministic big-router markings for an n-router grid:
// none, the main diagonal, and a seeded random quarter.
func bigSets(m *topology.Mesh) map[string][]bool {
	w, h := m.Dims()
	n := m.NumRouters()
	none := make([]bool, n)
	diag := make([]bool, n)
	for i := 0; i < w && i < h; i++ {
		diag[m.RouterAt(i, i)] = true
		diag[m.RouterAt(w-1-i, i)] = true
	}
	rnd := make([]bool, n)
	rng := rand.New(rand.NewSource(int64(n)))
	for i := 0; i < n/4; i++ {
		rnd[rng.Intn(n)] = true
	}
	return map[string][]bool{"none": none, "diagonal": diag, "random": rnd}
}

// TestTableXYMatchesDijkstra pins the analytic TableXY construction
// against the original per-destination Dijkstra over minimal-direction
// edges: every table entry must be bit-identical on every mesh shape and
// big-router marking.
func TestTableXYMatchesDijkstra(t *testing.T) {
	for _, m := range testMeshes() {
		for name, big := range bigSets(m) {
			ta := NewTableXY(m, TableXYConfig{Big: big})
			for dst := 0; dst < m.NumTerminals(); dst++ {
				want := refTableXYDst(m, big, dst)
				for r := range want {
					if ta.next[dst][r] != want[r] {
						t.Fatalf("%s/%s dst %d router %d: analytic port %d, Dijkstra port %d",
							m.Name(), name, dst, r, ta.next[dst][r], want[r])
					}
				}
			}
		}
	}
}

// faultScenarios applies deterministic fault sets to a fresh LinkState:
// fault-free, a few random links, links plus routers, and a cut that
// isolates the north-west corner.
func faultScenarios(m *topology.Mesh) map[string]*topology.LinkState {
	n := m.NumRouters()
	free := topology.NewLinkState(m)

	links := topology.NewLinkState(m)
	rng := rand.New(rand.NewSource(int64(2 * n)))
	for i := 0; i < n/8+2; i++ {
		links.FailLink(rng.Intn(n), rng.Intn(4))
	}

	mixed := links.Clone()
	for i := 0; i < 2; i++ {
		mixed.FailRouter(rng.Intn(n))
	}

	cut := topology.NewLinkState(m)
	cut.FailLink(m.RouterAt(0, 0), topology.PortEast)
	cut.FailLink(m.RouterAt(0, 0), topology.PortSouth)

	return map[string]*topology.LinkState{"free": free, "links": links, "mixed": mixed, "corner": cut}
}

// rebuildFromScratch forces a full (non-incremental) rebuild of ft on ls.
func rebuildFromScratch(ft *FaultTable, ls *topology.LinkState) {
	ft.havePrev = false
	ft.Rebuild(ls)
}

// TestFaultTableMatchesDijkstra pins the analytic FaultTable construction
// against the original per-destination Dijkstra over live links, on meshes
// and tori (the 2-wide torus exercises double edges between one router
// pair), across fault scenarios, for both the full and the incremental
// rebuild path.
func TestFaultTableMatchesDijkstra(t *testing.T) {
	topos := append(testMeshes(),
		topology.NewTorus(2, 4),
		topology.NewTorus(4, 4),
		topology.NewTorus(5, 3),
	)
	for _, m := range topos {
		for name, big := range bigSets(m) {
			for sname, ls := range faultScenarios(m) {
				t.Run(fmt.Sprintf("%s/%s/%s", m.Name(), name, sname), func(t *testing.T) {
					// Incremental path: faults accumulate onto the fresh table.
					inc := NewFaultTable(m, FaultTableConfig{Big: big})
					inc.Rebuild(ls)
					// Full path: from-scratch rebuild on the same state.
					full := NewFaultTable(m, FaultTableConfig{Big: big})
					rebuildFromScratch(full, ls)
					for dst := 0; dst < m.NumTerminals(); dst++ {
						want := refFaultDst(m, ls, big, dst)
						for r := range want {
							if inc.next[dst][r] != want[r] {
								t.Fatalf("incremental dst %d router %d: port %d, Dijkstra port %d",
									dst, r, inc.next[dst][r], want[r])
							}
							if full.next[dst][r] != want[r] {
								t.Fatalf("full dst %d router %d: port %d, Dijkstra port %d",
									dst, r, full.next[dst][r], want[r])
							}
							if inc.tree[dst][r] != full.tree[dst][r] {
								t.Fatalf("dst %d router %d: incremental tree port %d, full tree port %d",
									dst, r, inc.tree[dst][r], full.tree[dst][r])
							}
						}
					}
				})
			}
		}
	}
}

// TestFaultTableIncrementalSequences drives long random accumulating fault
// sequences — links, routers, forest-edge deaths, partitions — through one
// table via incremental Rebuilds (mutating one LinkState in place exactly
// like the simulator's fault sweep does) and checks the tables after every
// step against a from-scratch rebuild.
func TestFaultTableIncrementalSequences(t *testing.T) {
	grids := []*topology.Mesh{
		topology.NewMesh(4, 8),
		topology.NewMesh(8, 8),
		topology.NewTorus(4, 4),
	}
	for _, m := range grids {
		n := m.NumRouters()
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", m.Name(), seed), func(t *testing.T) {
				big := bigSets(m)["diagonal"]
				rng := rand.New(rand.NewSource(seed))
				ls := topology.NewLinkState(m)
				inc := NewFaultTable(m, FaultTableConfig{Big: big})
				for step := 0; step < 12; step++ {
					if rng.Intn(4) == 0 {
						ls.FailRouter(rng.Intn(n))
					} else {
						ls.FailLink(rng.Intn(n), rng.Intn(4))
					}
					inc.Rebuild(ls)
					full := NewFaultTable(m, FaultTableConfig{Big: big})
					rebuildFromScratch(full, ls)
					for dst := 0; dst < m.NumTerminals(); dst++ {
						for r := 0; r < n; r++ {
							if inc.next[dst][r] != full.next[dst][r] {
								t.Fatalf("step %d dst %d router %d: incremental port %d, full port %d",
									step, dst, r, inc.next[dst][r], full.next[dst][r])
							}
							if inc.tree[dst][r] != full.tree[dst][r] {
								t.Fatalf("step %d dst %d router %d: incremental tree %d, full tree %d",
									step, dst, r, inc.tree[dst][r], full.tree[dst][r])
							}
						}
					}
				}
				// Rolling back to fault-free must fall back to a full rebuild
				// and restore the pristine tables.
				inc.Rebuild(nil)
				fresh := NewFaultTable(m, FaultTableConfig{Big: big})
				for dst := 0; dst < m.NumTerminals(); dst++ {
					for r := 0; r < n; r++ {
						if inc.next[dst][r] != fresh.next[dst][r] {
							t.Fatalf("after Rebuild(nil): dst %d router %d differs from fresh table", dst, r)
						}
					}
				}
			})
		}
	}
}

// TestFaultTableRebuildNoAllocsSteadyState checks the arena design: a
// Rebuild that changes nothing (the steady-state call the simulator makes
// whenever its fault plan re-arms) allocates only the forest adjacency.
func TestFaultTableRebuildNoAllocsSteadyState(t *testing.T) {
	m := topology.NewMesh(8, 8)
	ft := NewFaultTable(m, FaultTableConfig{})
	ls := topology.NewLinkState(m)
	ls.FailLink(m.RouterAt(3, 3), topology.PortEast)
	ft.Rebuild(ls)
	allocs := testing.AllocsPerRun(50, func() { ft.Rebuild(ls) })
	// buildForest allocates the adjacency slices; everything else must be
	// arena-backed. 8x8 has 64 routers -> ~65 small allocations.
	if allocs > 200 {
		t.Fatalf("steady-state Rebuild makes %.0f allocations, want <= 200", allocs)
	}
}
