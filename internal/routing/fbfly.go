package routing

import "heteronoc/internal/topology"

// FBflyRC is deterministic row-then-column routing on a flattened butterfly:
// at most one row hop followed by at most one column hop. Like X-Y on a
// mesh, the strict dimension order makes it deadlock free with one class.
type FBflyRC struct {
	topo *topology.FBfly
}

// NewFBflyRC returns row-column routing over a flattened butterfly.
func NewFBflyRC(t *topology.FBfly) *FBflyRC { return &FBflyRC{topo: t} }

func (f *FBflyRC) Name() string                      { return "fbfly-rc" }
func (f *FBflyRC) NumVCClasses() int                 { return 1 }
func (f *FBflyRC) InitialClass(src, dst int) int     { return 0 }
func (f *FBflyRC) ClassVCs(_, numVCs int) (int, int) { return fullRange(numVCs) }

func (f *FBflyRC) NextHop(r, src, dst, class int) Decision {
	dstR, dstP := f.topo.TerminalRouter(dst)
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: class}
	}
	cx, _ := f.topo.Coord(r)
	dx, _ := f.topo.Coord(dstR)
	if cx != dx {
		return Decision{OutPort: f.topo.RowPort(r, dx), VCClass: class}
	}
	_, dy := f.topo.Coord(dstR)
	return Decision{OutPort: f.topo.ColPort(r, dy), VCClass: class}
}
