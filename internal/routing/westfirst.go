package routing

import (
	"heteronoc/internal/topology"
)

// WestFirst is the partially-adaptive west-first turn-model routing
// (Glass & Ni): all westward hops happen first, after which packets may
// adaptively choose among east/north/south productive directions. The two
// prohibited turns (N->W, S->W) break every cycle, so it is deadlock free
// on any number of VCs without extra classes — which makes it a clean
// ablation partner for X-Y: the paper claims HeteroNoC's gains come from
// resource placement, "without changing the routing or the traffic flows";
// running both algorithms over the same layouts tests that the gains
// survive an adaptive router too.
//
// Adaptivity needs congestion feedback: the simulator passes a Selector
// view at construction (or the zero Selector for deterministic-first
// behavior); when several productive ports exist, the one whose recent
// utilization is lowest wins.
type WestFirst struct {
	topo *topology.Mesh
	// Congestion, when non-nil, scores an output port of a router; lower
	// is better. The noc package wires its live link occupancy here.
	Congestion func(router, port int) float64
}

// NewWestFirst returns west-first routing over a mesh.
func NewWestFirst(t *topology.Mesh) *WestFirst {
	if t.Wrap() {
		panic("routing: WestFirst requires a mesh, not a torus")
	}
	return &WestFirst{topo: t}
}

func (w *WestFirst) Name() string                      { return "west-first" }
func (w *WestFirst) NumVCClasses() int                 { return 1 }
func (w *WestFirst) InitialClass(src, dst int) int     { return 0 }
func (w *WestFirst) ClassVCs(_, numVCs int) (int, int) { return fullRange(numVCs) }

func (w *WestFirst) NextHop(r, src, dst, class int) Decision {
	dstR, dstP := w.topo.TerminalRouter(dst)
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: class}
	}
	cx, cy := w.topo.Coord(r)
	dx, dy := w.topo.Coord(dstR)
	// All west hops first: while the destination is west, only West is
	// permitted (the turn model forbids turning into West later).
	if dx < cx {
		return Decision{OutPort: topology.PortWest, VCClass: class}
	}
	// Otherwise choose adaptively among the productive E/N/S directions.
	var cands []int
	if dx > cx {
		cands = append(cands, topology.PortEast)
	}
	if dy > cy {
		cands = append(cands, topology.PortSouth)
	}
	if dy < cy {
		cands = append(cands, topology.PortNorth)
	}
	if len(cands) == 1 {
		return Decision{OutPort: cands[0], VCClass: class}
	}
	best := cands[0]
	if w.Congestion != nil {
		bestScore := w.Congestion(r, best)
		for _, p := range cands[1:] {
			if s := w.Congestion(r, p); s < bestScore {
				best, bestScore = p, s
			}
		}
	}
	return Decision{OutPort: best, VCClass: class}
}
