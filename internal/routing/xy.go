package routing

import (
	"heteronoc/internal/topology"
)

// XY is deterministic dimension-ordered routing on a mesh or concentrated
// mesh: packets fully correct their X offset, then their Y offset. It is
// deadlock free on any number of VCs (single class).
type XY struct {
	topo topology.Grid
}

// NewXY returns X-Y routing over a (concentrated) mesh grid.
func NewXY(t topology.Grid) *XY { return &XY{topo: t} }

func (x *XY) Name() string                      { return "xy" }
func (x *XY) NumVCClasses() int                 { return 1 }
func (x *XY) InitialClass(src, dst int) int     { return 0 }
func (x *XY) ClassVCs(_, numVCs int) (int, int) { return fullRange(numVCs) }

func (x *XY) NextHop(r, src, dst, class int) Decision {
	dstR, dstP := x.topo.TerminalRouter(dst)
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: class}
	}
	cx, cy := x.topo.Coord(r)
	dx, dy := x.topo.Coord(dstR)
	var port int
	switch {
	case cx < dx:
		port = topology.PortEast
	case cx > dx:
		port = topology.PortWest
	case cy < dy:
		port = topology.PortSouth
	default:
		port = topology.PortNorth
	}
	validatePort("xy", r, port)
	return Decision{OutPort: port, VCClass: class}
}

// TorusXY is dimension-ordered routing on a torus with shortest-direction
// selection per ring and dateline VC classes: packets start in class 0 and
// move to class 1 after crossing the dateline of the dimension they are
// currently traversing (located between the last and first row/column).
// Class 0 uses the lower half of the VCs, class 1 the upper half, which
// breaks the cyclic channel dependency of each ring (Dally & Seitz).
type TorusXY struct {
	topo *topology.Mesh
}

// NewTorusXY returns dateline X-Y routing over a torus.
func NewTorusXY(t *topology.Mesh) *TorusXY {
	if !t.Wrap() {
		panic("routing: TorusXY requires a torus topology")
	}
	return &TorusXY{topo: t}
}

func (t *TorusXY) Name() string                  { return "torus-xy" }
func (t *TorusXY) NumVCClasses() int             { return 2 }
func (t *TorusXY) InitialClass(src, dst int) int { return 0 }

func (t *TorusXY) ClassVCs(class, numVCs int) (int, int) {
	half := numVCs / 2
	if half == 0 {
		half = 1 // degenerate single-VC port: both classes share it
	}
	if class == 0 {
		return 0, half
	}
	return numVCs - half, numVCs
}

// dimStep returns the signed step (-1, 0, +1) along one ring of size n from
// a to b taking the shorter way (ties go positive), and whether that step
// crosses the dateline between position n-1 and position 0.
func dimStep(a, b, n int) (step int, crossesDateline bool) {
	if a == b {
		return 0, false
	}
	fwd := (b - a + n) % n // hops going positive
	if fwd <= n-fwd {
		step = 1
		crossesDateline = a == n-1
	} else {
		step = -1
		crossesDateline = a == 0
	}
	return step, crossesDateline
}

func (t *TorusXY) NextHop(r, src, dst, class int) Decision {
	dstR, dstP := t.topo.TerminalRouter(dst)
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: class}
	}
	w, h := t.topo.Dims()
	cx, cy := t.topo.Coord(r)
	dx, dy := t.topo.Coord(dstR)
	if cx != dx {
		step, cross := dimStep(cx, dx, w)
		port := topology.PortEast
		if step < 0 {
			port = topology.PortWest
		}
		next := class
		if cross {
			next = 1
		}
		// Entering the X dimension fresh (first hop from source router in
		// X): class was set to 0 at injection, so nothing to reset.
		return Decision{OutPort: port, VCClass: next}
	}
	// Switching from X to Y traversal resets the dateline class: the Y ring
	// channels are disjoint from the X ring channels.
	if cy == t.yEntry(r, src, dstR) && cx == dx {
		class = t.classAtYEntry(src, dstR)
	}
	step, cross := dimStep(cy, dy, h)
	port := topology.PortSouth
	if step < 0 {
		port = topology.PortNorth
	}
	next := class
	if cross {
		next = 1
	}
	return Decision{OutPort: port, VCClass: next}
}

// yEntry returns the Y coordinate where a packet from src to dstR enters the
// Y dimension: the source row, since X is corrected first.
func (t *TorusXY) yEntry(r, src, dstR int) int {
	srcR, _ := t.topo.TerminalRouter(src)
	_, sy := t.topo.Coord(srcR)
	return sy
}

// classAtYEntry returns the VC class a packet holds when it starts the Y
// traversal: 0, because the Y ring is entered fresh.
func (t *TorusXY) classAtYEntry(src, dstR int) int { return 0 }
