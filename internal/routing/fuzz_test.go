package routing

import (
	"errors"
	"fmt"
	"testing"

	"heteronoc/internal/topology"
)

// FuzzFaultTableRebuild drives table reconstruction with arbitrary
// dead-link (and dead-router) sets on 8x8, non-square 4x8, and 16x16
// meshes. Faults are applied one at a time through the incremental Rebuild
// path — exactly how the simulator's fault sweep uses the table — and the
// result must be bit-identical to a from-scratch rebuild on the final
// state. Whatever the failure pattern — including partitions and fully
// dead networks — the rebuilt tables must also be finite and consistent:
// every next-hop chain either reaches its destination within NumRouters
// steps over live links only, or the pair is reported unreachable via
// Reachable/RouteError. The escape-forest table is held to the same
// contract. Panics and non-terminating walks are the failure modes under
// test.
func FuzzFaultTableRebuild(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01})
	f.Add([]byte{0x03, 0x02, 0x1b, 0x81, 0x3f, 0x00})
	f.Add([]byte{0x1b, 0x01, 0x1c, 0x01, 0x23, 0x01, 0x24, 0x01}) // carve out the center
	f.Add([]byte{0x00, 0x80, 0x3f, 0x80, 0x07, 0x80, 0x38, 0x80}) // kill the corners
	f.Fuzz(func(t *testing.T, data []byte) {
		grids := []*topology.Mesh{
			topology.NewMesh(8, 8),
			topology.NewMesh(4, 8),
			topology.NewMesh(16, 16),
		}
		for _, m := range grids {
			ls := topology.NewLinkState(m)
			inc := NewFaultTable(m, FaultTableConfig{Big: diagonalBig(m)})
			for i := 0; i+1 < len(data); i += 2 {
				r := int(data[i]) % m.NumRouters()
				if data[i+1]&0x80 != 0 {
					ls.FailRouter(r)
				} else {
					ls.FailLink(r, int(data[i+1])%m.Radix(r))
				}
				inc.Rebuild(ls) // absorb each fault incrementally
			}
			full := NewFaultTable(m, FaultTableConfig{Big: diagonalBig(m)})
			full.havePrev = false
			full.Rebuild(ls)
			n := m.NumRouters()
			for dst := 0; dst < m.NumTerminals(); dst++ {
				for r := 0; r < n; r++ {
					if inc.next[dst][r] != full.next[dst][r] {
						t.Fatalf("%s dst %d router %d: incremental port %d, from-scratch port %d",
							m.Name(), dst, r, inc.next[dst][r], full.next[dst][r])
					}
					if inc.tree[dst][r] != full.tree[dst][r] {
						t.Fatalf("%s dst %d router %d: incremental tree %d, from-scratch tree %d",
							m.Name(), dst, r, inc.tree[dst][r], full.tree[dst][r])
					}
				}
			}
			checkTableContract(t, m, ls, inc)
		}
	})
}

// checkTableContract walks every terminal pair over both the primary and
// the escape tables, requiring termination over live links or an explicit
// unreachable report.
func checkTableContract(t *testing.T, m *topology.Mesh, ls *topology.LinkState, ft *FaultTable) {
	t.Helper()
	n := m.NumRouters()
	for src := 0; src < m.NumTerminals(); src++ {
		srcR, _ := m.TerminalRouter(src)
		for dst := 0; dst < m.NumTerminals(); dst++ {
			dstR, _ := m.TerminalRouter(dst)
			if !ft.Reachable(src, dst) {
				if err := ft.RouteError(src, dst); !errors.Is(err, ErrUnreachable) {
					t.Fatalf("%s %d->%d: Reachable false but RouteError = %v", m.Name(), src, dst, err)
				}
				continue
			}
			if err := ft.RouteError(src, dst); err != nil {
				t.Fatalf("%s %d->%d: Reachable true but RouteError = %v", m.Name(), src, dst, err)
			}
			// Primary table: the chain terminates at dstR over live links.
			walkChain(t, m, ls, src, dst, srcR, dstR, n, "primary", func(at int) int {
				return ft.NextHop(at, src, dst, classTable).OutPort
			})
			// Escape forest: same termination contract.
			walkChain(t, m, ls, src, dst, srcR, dstR, n, "escape", func(at int) int {
				return ft.EscapeHop(at, src, dst).OutPort
			})
		}
	}
}

func walkChain(t *testing.T, m *topology.Mesh, ls *topology.LinkState, src, dst, srcR, dstR, n int, kind string, hop func(at int) int) {
	t.Helper()
	at := srcR
	for steps := 0; at != dstR; steps++ {
		if steps > n {
			t.Fatalf("%s %d->%d: %s chain does not terminate", m.Name(), src, dst, kind)
		}
		port := hop(at)
		if port < 0 {
			t.Fatalf("%s %d->%d: %s chain dead-ends at router %d", m.Name(), src, dst, kind, at)
		}
		link, ok := m.Neighbor(at, port)
		if !ok || !ls.Up(at, port) {
			t.Fatalf("%s %d->%d: %s chain crosses dead port %s", m.Name(), src, dst, kind, fmt.Sprintf("%d.%d", at, port))
		}
		at = link.Router
	}
}
