package routing

import (
	"errors"
	"testing"

	"heteronoc/internal/topology"
)

// FuzzFaultTableRebuild drives table reconstruction with arbitrary
// dead-link (and dead-router) sets on the 8x8 mesh. Whatever the failure
// pattern — including partitions and fully dead networks — the rebuilt
// tables must be finite and consistent: every next-hop chain either
// reaches its destination within NumRouters steps over live links only,
// or the pair is reported unreachable via Reachable/RouteError. The
// escape-forest table is held to the same contract. Panics and
// non-terminating walks are the failure modes under test.
func FuzzFaultTableRebuild(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01})
	f.Add([]byte{0x03, 0x02, 0x1b, 0x81, 0x3f, 0x00})
	f.Add([]byte{0x1b, 0x01, 0x1c, 0x01, 0x23, 0x01, 0x24, 0x01}) // carve out the center
	f.Add([]byte{0x00, 0x80, 0x3f, 0x80, 0x07, 0x80, 0x38, 0x80}) // kill the corners
	f.Fuzz(func(t *testing.T, data []byte) {
		m := topology.NewMesh(8, 8)
		ls := topology.NewLinkState(m)
		for i := 0; i+1 < len(data); i += 2 {
			r := int(data[i]) % m.NumRouters()
			if data[i+1]&0x80 != 0 {
				ls.FailRouter(r)
				continue
			}
			ls.FailLink(r, int(data[i+1])%m.Radix(r))
		}
		ft := NewFaultTable(m, FaultTableConfig{Big: diagonalBig(m)})
		ft.Rebuild(ls)
		n := m.NumRouters()
		for src := 0; src < m.NumTerminals(); src++ {
			srcR, _ := m.TerminalRouter(src)
			for dst := 0; dst < m.NumTerminals(); dst++ {
				dstR, _ := m.TerminalRouter(dst)
				if !ft.Reachable(src, dst) {
					if err := ft.RouteError(src, dst); !errors.Is(err, ErrUnreachable) {
						t.Fatalf("%d->%d: Reachable false but RouteError = %v", src, dst, err)
					}
					continue
				}
				if err := ft.RouteError(src, dst); err != nil {
					t.Fatalf("%d->%d: Reachable true but RouteError = %v", src, dst, err)
				}
				// Primary table: the chain terminates at dstR over live links.
				at := srcR
				for steps := 0; at != dstR; steps++ {
					if steps > n {
						t.Fatalf("%d->%d: primary chain does not terminate", src, dst)
					}
					d := ft.NextHop(at, src, dst, classTable)
					if d.OutPort < 0 {
						t.Fatalf("%d->%d: primary chain dead-ends at router %d", src, dst, at)
					}
					link, ok := m.Neighbor(at, d.OutPort)
					if !ok || !ls.Up(at, d.OutPort) {
						t.Fatalf("%d->%d: primary chain crosses dead port %d.%d", src, dst, at, d.OutPort)
					}
					at = link.Router
				}
				// Escape forest: same termination contract.
				at = srcR
				for steps := 0; at != dstR; steps++ {
					if steps > n {
						t.Fatalf("%d->%d: escape chain does not terminate", src, dst)
					}
					d := ft.EscapeHop(at, src, dst)
					if d.OutPort < 0 {
						t.Fatalf("%d->%d: escape chain dead-ends at router %d", src, dst, at)
					}
					link, ok := m.Neighbor(at, d.OutPort)
					if !ok || !ls.Up(at, d.OutPort) {
						t.Fatalf("%d->%d: escape chain crosses dead port %d.%d", src, dst, at, d.OutPort)
					}
					at = link.Router
				}
			}
		}
	})
}
