package routing

import (
	"errors"
	"fmt"

	"heteronoc/internal/topology"
)

// ErrUnreachable reports that no live path exists between two terminals
// after link/router failures. Callers (the NI reliability layer, the
// experiments) surface it instead of letting packets hang in the network.
var ErrUnreachable = errors.New("routing: destination unreachable")

// FaultAware is implemented by algorithms that can route around failed
// links. The simulator calls Rebuild after applying each permanent fault;
// NextHop then never selects a dead port, and destinations severed from a
// source are reported via Reachable/RouteError rather than by wedging.
type FaultAware interface {
	Algorithm
	// Rebuild recomputes all routes over the live links in ls. A nil ls
	// restores the fault-free routes.
	Rebuild(ls *topology.LinkState)
	// Reachable reports whether a live path exists from terminal src to
	// terminal dst.
	Reachable(src, dst int) bool
	// RouteError returns nil when dst is reachable from src and an error
	// wrapping ErrUnreachable otherwise.
	RouteError(src, dst int) error
}

// FaultTable is table-based routing that survives link and router
// failures. Primary paths are per-destination shortest paths over the live
// links (big routers break ties, so on HeteroNoC layouts equal-length
// paths gravitate to the wide diagonal routers); because they take
// turns in both orders they are not deadlock free on their own, so a
// reserved escape VC (VC 0) drains starved packets over a spanning forest
// of the live links. Paths restricted to a tree ascend toward the root and
// then descend, which admits no cyclic channel dependency, so the escape
// sub-network stays deadlock free no matter which links have died.
//
// When a permanent fault partitions the network, NextHop returns a
// decision with OutPort < 0 for severed destinations and Reachable reports
// false; the simulator drops such packets with a stat instead of hanging.
type FaultTable struct {
	topo        topology.Topology
	big         []bool
	bigAdd      []int32
	escapeAfter int
	ls          *topology.LinkState
	// next[dst][router] is the output port toward terminal dst on the
	// primary network, -1 when dst is unreachable from router.
	next [][]int16
	// tree[dst][router] is the output port toward terminal dst restricted
	// to the escape spanning forest, -1 when unreachable.
	tree [][]int16

	// Flat arenas backing next and tree: one allocation each for the whole
	// table instead of one per destination.
	nextArena []int16
	treeArena []int16

	// Live-link adjacency, refreshed on every Rebuild: adj[r*maxRadix+p]
	// is the router reached over the live link at port p of router r (-1
	// for terminal ports, edge ports and dead links) and far[.] is the
	// far-side port on that router. The per-destination passes read these
	// flat arrays instead of calling Neighbor/Up per edge.
	maxRadix int
	adj, far []int32

	// hbuf/bbuf are the per-destination build scratch: hop layer toward the
	// destination over the live links (-1 when unreachable) and the maximum
	// number of big routers after each router over minimal-hop paths.
	hbuf, bbuf []int32

	// Previous liveness, owned copies (callers mutate the same LinkState
	// in place between Rebuilds, so the diff needs its own snapshot).
	prevDown []bool // flat V x maxRadix, network ports only
	prevDead []bool
	havePrev bool

	// Escape forest adjacency as flat port lists:
	// forestPorts[r*maxRadix : r*maxRadix+forestCnt[r]] are the forest-edge
	// ports of router r. newForest* is the scratch the next forest is built
	// into before comparing; when the forest is unchanged the tree tables
	// carry over untouched.
	forestPorts, newForestPorts []int16
	forestCnt, newForestCnt     []int16

	// Rooted view of the forest, recomputed only when the forest changes:
	// every component is rooted at its lowest-numbered live router, and
	// tree tables are derived from the parent pointers in O(V) per
	// destination (the ancestors of the destination route down the
	// destination's root path, everyone else routes to its parent).
	parent     []int32 // parent router, -1 at roots
	parentPort []int16 // port on u toward its parent
	parentFar  []int16 // port on the parent toward u
	comp       []int32 // component root, -1 while fail-stopped
	stamp      []int64 // generation stamp marking the current root path
	down       []int16 // port toward the destination, valid where stamped
	stampGen   int64

	// Fault-free fast path: nonzero mesh dimensions when topo is a
	// non-wrapping mesh, so hop layers are Manhattan distances in closed
	// form and each router has at most one minimal candidate per dimension.
	meshW, meshH int
	allUp        bool

	// Scratch reused across destinations (zero steady-state allocations).
	queue    []int32
	seen     []bool
	newEdges [][2]int32 // newly dead directed edges as (router, port) pairs
	newDeadR []int32    // newly fail-stopped routers
}

// FaultTableConfig parameterizes table construction.
type FaultTableConfig struct {
	// Big marks big routers by router ID; among equal-length shortest
	// paths the table prefers ones through big routers (nil = no bias).
	Big []bool
	// EscapeThreshold is the VA starvation limit in cycles before a packet
	// is diverted to the escape forest (default 64).
	EscapeThreshold int
}

// NewFaultTable builds fault-free routes for t; call Rebuild as failures
// accumulate.
func NewFaultTable(t topology.Topology, cfg FaultTableConfig) *FaultTable {
	ft := &FaultTable{
		topo:        t,
		big:         cfg.Big,
		escapeAfter: cfg.EscapeThreshold,
	}
	if ft.escapeAfter <= 0 {
		ft.escapeAfter = 64
	}
	if ft.big == nil {
		ft.big = make([]bool, t.NumRouters())
	}
	n := t.NumRouters()
	terms := t.NumTerminals()
	ft.bigAdd = make([]int32, n)
	for r, b := range ft.big {
		if b {
			ft.bigAdd[r] = 1
		}
	}
	for r := 0; r < n; r++ {
		if rad := t.Radix(r); rad > ft.maxRadix {
			ft.maxRadix = rad
		}
	}
	ft.adj = make([]int32, n*ft.maxRadix)
	ft.far = make([]int32, n*ft.maxRadix)
	ft.hbuf = make([]int32, n)
	ft.bbuf = make([]int32, n)
	ft.prevDown = make([]bool, n*ft.maxRadix)
	ft.prevDead = make([]bool, n)
	ft.forestPorts = make([]int16, n*ft.maxRadix)
	ft.newForestPorts = make([]int16, n*ft.maxRadix)
	ft.forestCnt = make([]int16, n)
	ft.newForestCnt = make([]int16, n)
	ft.parent = make([]int32, n)
	ft.parentPort = make([]int16, n)
	ft.parentFar = make([]int16, n)
	ft.comp = make([]int32, n)
	ft.stamp = make([]int64, n)
	ft.down = make([]int16, n)
	ft.seen = make([]bool, n)
	ft.queue = make([]int32, 0, n)
	if m, ok := t.(*topology.Mesh); ok && !m.Wrap() {
		ft.meshW, ft.meshH = m.Dims()
	}
	ft.nextArena = make([]int16, terms*n)
	ft.treeArena = make([]int16, terms*n)
	ft.next = make([][]int16, terms)
	ft.tree = make([][]int16, terms)
	for dst := 0; dst < terms; dst++ {
		ft.next[dst] = ft.nextArena[dst*n : (dst+1)*n : (dst+1)*n]
		ft.tree[dst] = ft.treeArena[dst*n : (dst+1)*n : (dst+1)*n]
	}
	ft.Rebuild(nil)
	return ft
}

// Rebuild recomputes the primary tables and the escape forest over the
// live links in ls (nil = all links up), deterministic in both iteration
// order and tie-breaking, so identical failure histories yield identical
// tables.
//
// When failures strictly accumulate since the previous Rebuild — the
// common case, faults are permanent — the rebuild is incremental: a newly
// dead link changes a destination's routes only when some router's chosen
// output port for that destination died (see dstAffected for why the test
// is exact). Only the affected destinations are recomputed, each with one
// O(V*radix) pass; tree tables are refreshed only when the escape forest
// changed. Any rollback (a link coming back up, e.g. Rebuild(nil) after
// faults) falls back to a full rebuild.
func (ft *FaultTable) Rebuild(ls *topology.LinkState) {
	if ls == nil {
		ls = topology.NewLinkState(ft.topo)
	}
	ft.ls = ls
	n := ft.topo.NumRouters()
	terms := ft.topo.NumTerminals()

	// Diff the new liveness against the previous snapshot while refreshing
	// both the snapshot and the flat adjacency.
	incremental := ft.havePrev
	ft.newEdges = ft.newEdges[:0]
	ft.newDeadR = ft.newDeadR[:0]
	ft.allUp = true
	for r := 0; r < n; r++ {
		base := r * ft.maxRadix
		rad := ft.topo.Radix(r)
		for p := 0; p < ft.maxRadix; p++ {
			if p >= rad {
				ft.adj[base+p] = -1
				continue
			}
			link, isNet := ft.topo.Neighbor(r, p)
			if !isNet {
				ft.adj[base+p] = -1
				continue
			}
			downNow := !ls.Up(r, p)
			if downNow {
				ft.adj[base+p] = -1
				ft.allUp = false
			} else {
				ft.adj[base+p] = int32(link.Router)
				ft.far[base+p] = int32(link.Port)
			}
			if was := ft.prevDown[base+p]; was != downNow {
				if was {
					incremental = false // resurrection: full rebuild
				} else {
					ft.newEdges = append(ft.newEdges, [2]int32{int32(r), int32(p)})
				}
				ft.prevDown[base+p] = downNow
			}
		}
		deadNow := ls.RouterFailed(r)
		if deadNow {
			ft.allUp = false
		}
		if was := ft.prevDead[r]; was != deadNow {
			if was {
				incremental = false
			} else {
				ft.newDeadR = append(ft.newDeadR, int32(r))
			}
			ft.prevDead[r] = deadNow
		}
	}
	ft.havePrev = true

	forestChanged := ft.refreshForest()
	if forestChanged {
		ft.rebuildForestParents()
	}

	if !incremental {
		for dst := 0; dst < terms; dst++ {
			ft.rebuildDst(dst)
			ft.rebuildTree(dst)
		}
		return
	}
	for dst := 0; dst < terms; dst++ {
		if !ft.dstAffected(dst) {
			if forestChanged {
				ft.rebuildTree(dst)
			}
			continue
		}
		// An affected destination's chosen edges overlap the dead set by
		// definition, so the pristine-table shortcut inside rebuildDst
		// would be wasted work here: go straight to the general build.
		ft.rebuildDstGeneral(dst)
		ft.rebuildTree(dst)
	}
}

// dstAffected reports whether any newly dead edge or router invalidates
// the stored primary table for dst. The test is exact: a destination's
// routes change if and only if its router fail-stopped or some router's
// chosen output port died. When every chosen edge survives, an induction
// over hop layers shows nothing moves — each router's hop count is still
// realized by its surviving chosen edge (removals never shorten paths),
// its maximal big count is still realized by that same edge, and the
// deterministic winner keeps its key while losing only lower-ranked
// competitors, so the argmax port is unchanged everywhere.
func (ft *FaultTable) dstAffected(dst int) bool {
	dstR, _ := ft.topo.TerminalRouter(dst)
	for _, r := range ft.newDeadR {
		if int(r) == dstR {
			return true
		}
	}
	next := ft.next[dst]
	for _, e := range ft.newEdges {
		if int32(next[e[0]]) == e[1] {
			return true
		}
	}
	return false
}

// rebuildDst recomputes next[dst] (and the hop/big characterization) over
// the live links with one fused O(V*radix) pass, bit-identical to one
// backwards Dijkstra with cost n-big[r] per hop into r:
//
//   - BFS from the destination router assigns hop layers h. Because every
//     simple path has fewer than n hops, big-router discounts of 1 against
//     a per-hop cost of n never sum to a full hop, so Dijkstra distances
//     order lexicographically by (hops ascending, bigs descending) and the
//     BFS layers are exactly the Dijkstra hop counts.
//   - When a router u at layer hu is dequeued, every layer-(hu-1) router
//     has already been dequeued and finalized, so the same port scan that
//     enqueues layer-(hu+1) neighbors also takes the maximal big count over
//     u's minimal-hop out-edges, b(u) = max b(r)+big(r), and records the
//     port toward the argmax — ties broken by larger b(r), then smaller
//     router ID, then smaller far-side port, which is exactly the order the
//     replaced heap popped equal-distance entries.
func (ft *FaultTable) rebuildDst(dst int) {
	if ft.allUp && ft.meshW > 0 {
		ft.rebuildDstMesh(dst)
		return
	}
	ft.rebuildDstGeneral(dst)
}

// rebuildDstGeneral is the any-topology, any-fault-set build for one
// destination.
func (ft *FaultTable) rebuildDstGeneral(dst int) {
	n := ft.topo.NumRouters()
	next := ft.next[dst]
	h := ft.hbuf
	b := ft.bbuf
	for i := 0; i < n; i++ {
		next[i] = -1
		h[i] = -1
		b[i] = 0
	}
	dstR, _ := ft.topo.TerminalRouter(dst)
	if ft.ls.RouterFailed(dstR) {
		return
	}
	h[dstR] = 0
	q := append(ft.queue[:0], int32(dstR))
	for qi := 0; qi < len(q); qi++ {
		u := int(q[qi])
		base := u * ft.maxRadix
		adjRow := ft.adj[base : base+ft.maxRadix]
		hu := h[u]
		bestKey, bestB := int32(-1), int32(-1)
		bestR, bestFar := int32(n), int32(ft.maxRadix)
		port := int16(-1)
		for p, r := range adjRow {
			if r < 0 {
				continue
			}
			hr := h[r]
			if hr < 0 {
				h[r] = hu + 1
				q = append(q, r)
				continue
			}
			if hr != hu-1 {
				continue
			}
			kb := b[r] + ft.bigAdd[r]
			if kb > bestKey || (kb == bestKey && (b[r] > bestB ||
				(b[r] == bestB && (r < bestR || (r == bestR && ft.far[base+p] < bestFar))))) {
				bestKey, bestB, bestR, bestFar = kb, b[r], r, ft.far[base+p]
				port = int16(p)
			}
		}
		if qi > 0 {
			b[u] = bestKey
			next[u] = port
		}
	}
	ft.queue = q[:0]
}

// rebuildDstMesh is rebuildDst specialized to a fault-free non-wrapping
// mesh: every hop layer is the Manhattan distance in closed form (no BFS,
// no adjacency loads) and each router has at most two minimal candidates —
// one per dimension still unresolved — at arithmetic offsets. Rows are
// processed outward from the destination row and, within a row, outward
// from the destination column, which is a topological order of the minimal
// DAG, so the b recurrence and the deterministic winner key (larger
// b(r)+big(r), then larger b(r), then smaller router ID) match the general
// path bit for bit. The far-side-port tie-break never engages because the
// two candidates are distinct routers.
func (ft *FaultTable) rebuildDstMesh(dst int) {
	next := ft.next[dst]
	b := ft.bbuf
	w, ht := ft.meshW, ft.meshH
	dstR, _ := ft.topo.TerminalRouter(dst)
	dx, dy := dstR%w, dstR/w
	bigAdd := ft.bigAdd
	fillRow := func(y int) {
		rowBase := y * w
		vstep, vport := 0, int16(-1)
		vWins := false // vertical candidate has the smaller router ID
		if y < dy {
			vstep, vport = w, int16(topology.PortSouth)
		} else if y > dy {
			vstep, vport, vWins = -w, int16(topology.PortNorth), true
		}
		// Sweep left of (and including) the destination column, then right:
		// the horizontal candidate is always the router one step back.
		for x := dx; x >= 0; x-- {
			u := rowBase + x
			if x == dx {
				if vstep == 0 { // the destination router itself
					next[u] = -1
					b[u] = 0
					continue
				}
				r := u + vstep
				b[u] = b[r] + bigAdd[r]
				next[u] = vport
				continue
			}
			rh := u + 1
			bb, port := b[rh]+bigAdd[rh], int16(topology.PortEast)
			if vstep != 0 {
				rv := u + vstep
				kb := b[rv] + bigAdd[rv]
				if kb > bb || (kb == bb && (b[rv] > b[rh] || (b[rv] == b[rh] && vWins))) {
					bb, port = kb, vport
				}
			}
			b[u] = bb
			next[u] = port
		}
		for x := dx + 1; x < w; x++ {
			u := rowBase + x
			rh := u - 1
			bb, port := b[rh]+bigAdd[rh], int16(topology.PortWest)
			if vstep != 0 {
				rv := u + vstep
				kb := b[rv] + bigAdd[rv]
				if kb > bb || (kb == bb && (b[rv] > b[rh] || (b[rv] == b[rh] && vWins))) {
					bb, port = kb, vport
				}
			}
			b[u] = bb
			next[u] = port
		}
	}
	fillRow(dy)
	for i := 1; ; i++ {
		any := false
		if y := dy - i; y >= 0 {
			fillRow(y)
			any = true
		}
		if y := dy + i; y < ht {
			fillRow(y)
			any = true
		}
		if !any {
			break
		}
	}
}

// refreshForest constructs a BFS spanning forest of the live-link graph as
// flat per-router port lists (every component rooted at its lowest-numbered
// live router) and reports whether it differs from the previous forest.
// When it is unchanged the tree tables of unaffected destinations carry
// over untouched.
func (ft *FaultTable) refreshForest() (changed bool) {
	n := ft.topo.NumRouters()
	ports, cnt := ft.newForestPorts, ft.newForestCnt
	for i := range cnt {
		cnt[i] = 0
	}
	seen := ft.seen
	for i := range seen {
		seen[i] = false
	}
	queue := ft.queue[:0]
	for root := 0; root < n; root++ {
		if seen[root] || ft.ls.RouterFailed(root) {
			continue
		}
		seen[root] = true
		queue = append(queue[:0], int32(root))
		for qi := 0; qi < len(queue); qi++ {
			r := int(queue[qi])
			base := r * ft.maxRadix
			for p := 0; p < ft.maxRadix; p++ {
				u := ft.adj[base+p]
				if u < 0 || seen[int(u)] {
					continue
				}
				seen[u] = true
				ports[base+int(cnt[r])] = int16(p)
				cnt[r]++
				ub := int(u) * ft.maxRadix
				ports[ub+int(cnt[u])] = int16(ft.far[base+p])
				cnt[u]++
				queue = append(queue, u)
			}
		}
	}
	ft.queue = queue[:0]
	for r := 0; r < n; r++ {
		if cnt[r] != ft.forestCnt[r] {
			changed = true
			break
		}
		base := r * ft.maxRadix
		for i := 0; i < int(cnt[r]); i++ {
			if ports[base+i] != ft.forestPorts[base+i] {
				changed = true
				break
			}
		}
		if changed {
			break
		}
	}
	if changed {
		ft.forestPorts, ft.newForestPorts = ft.newForestPorts, ft.forestPorts
		ft.forestCnt, ft.newForestCnt = ft.newForestCnt, ft.forestCnt
	}
	return changed
}

// rebuildForestParents roots every forest component at its lowest-numbered
// live router and records parent pointers, the ports on both ends of each
// parent edge, and component membership. Called only when the forest
// changed; rebuildTree derives all tree tables from this rooted view.
func (ft *FaultTable) rebuildForestParents() {
	n := ft.topo.NumRouters()
	for i := 0; i < n; i++ {
		ft.comp[i] = -1
	}
	q := ft.queue[:0]
	for root := 0; root < n; root++ {
		if ft.comp[root] >= 0 || ft.ls.RouterFailed(root) {
			continue
		}
		ft.comp[root] = int32(root)
		ft.parent[root] = -1
		ft.parentPort[root] = -1
		q = append(q[:0], int32(root))
		for qi := 0; qi < len(q); qi++ {
			r := int(q[qi])
			base := r * ft.maxRadix
			pend := base + int(ft.forestCnt[r])
			for pi := base; pi < pend; pi++ {
				p := int(ft.forestPorts[pi])
				u := ft.adj[base+p]
				if u < 0 || ft.comp[u] >= 0 {
					continue
				}
				ft.comp[u] = int32(root)
				ft.parent[u] = int32(r)
				ft.parentPort[u] = int16(ft.far[base+p])
				ft.parentFar[u] = int16(p)
				q = append(q, u)
			}
		}
	}
	ft.queue = q[:0]
}

// rebuildTree fills the escape next-hop table for dst from the rooted
// forest in one O(V) pass. Within a tree the path between any two routers
// is unique — up to the common ancestor, then down — so a router's port
// toward the destination is its parent port unless the router is an
// ancestor of the destination (lies on the destination's root path), in
// which case it is the port back down toward the destination. The root
// path is generation-stamped instead of cleared between destinations.
func (ft *FaultTable) rebuildTree(dst int) {
	n := ft.topo.NumRouters()
	next := ft.tree[dst]
	dstR, _ := ft.topo.TerminalRouter(dst)
	if ft.ls.RouterFailed(dstR) {
		for i := 0; i < n; i++ {
			next[i] = -1
		}
		return
	}
	gen := ft.stampGen + 1
	ft.stampGen = gen
	ft.stamp[dstR] = gen
	ft.down[dstR] = -1
	prev := int32(dstR)
	for v := ft.parent[dstR]; v >= 0; v = ft.parent[v] {
		ft.stamp[v] = gen
		ft.down[v] = ft.parentFar[prev]
		prev = v
	}
	cd := ft.comp[dstR]
	for u := 0; u < n; u++ {
		if ft.stamp[u] == gen {
			next[u] = ft.down[u]
		} else if ft.comp[u] == cd {
			next[u] = ft.parentPort[u]
		} else {
			next[u] = -1
		}
	}
}

func (ft *FaultTable) Name() string      { return "fault-table" }
func (ft *FaultTable) NumVCClasses() int { return 2 }

func (ft *FaultTable) InitialClass(src, dst int) int { return classTable }

func (ft *FaultTable) ClassVCs(class, numVCs int) (int, int) {
	switch class {
	case classEscape:
		return 0, 1
	default:
		if numVCs == 1 {
			return 0, 1
		}
		return 1, numVCs
	}
}

func (ft *FaultTable) NextHop(r, src, dst, class int) Decision {
	if class == classEscape {
		return ft.EscapeHop(r, src, dst)
	}
	dstR, dstP := ft.topo.TerminalRouter(dst)
	if ft.ls.RouterFailed(dstR) {
		return Decision{OutPort: -1, VCClass: classTable}
	}
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: classTable}
	}
	return Decision{OutPort: int(ft.next[dst][r]), VCClass: classTable}
}

// EscapeHop diverts a starved packet to the spanning-forest escape VC.
func (ft *FaultTable) EscapeHop(r, src, dst int) Decision {
	dstR, dstP := ft.topo.TerminalRouter(dst)
	if ft.ls.RouterFailed(dstR) {
		return Decision{OutPort: -1, VCClass: classEscape}
	}
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: classEscape}
	}
	return Decision{OutPort: int(ft.tree[dst][r]), VCClass: classEscape}
}

// EscapeThreshold returns the VA starvation limit in cycles.
func (ft *FaultTable) EscapeThreshold() int { return ft.escapeAfter }

// Reachable reports whether a live path exists from terminal src to
// terminal dst.
func (ft *FaultTable) Reachable(src, dst int) bool {
	srcR, _ := ft.topo.TerminalRouter(src)
	dstR, _ := ft.topo.TerminalRouter(dst)
	if ft.ls.RouterFailed(srcR) || ft.ls.RouterFailed(dstR) {
		return false
	}
	return srcR == dstR || ft.next[dst][srcR] >= 0
}

// RouteError returns nil when dst is reachable from src, and an error
// wrapping ErrUnreachable otherwise.
func (ft *FaultTable) RouteError(src, dst int) error {
	if ft.Reachable(src, dst) {
		return nil
	}
	return fmt.Errorf("%w (terminal %d -> %d with %d links down)", ErrUnreachable, src, dst, ft.ls.NumDownLinks())
}

// PathRouters returns the primary-path router sequence from terminal src
// to terminal dst, or nil when dst is unreachable. Tests use it to check
// rebuilt paths avoid dead links.
func (ft *FaultTable) PathRouters(src, dst int) []int {
	r, _ := ft.topo.TerminalRouter(src)
	dstR, _ := ft.topo.TerminalRouter(dst)
	if !ft.Reachable(src, dst) {
		return nil
	}
	path := []int{r}
	for r != dstR {
		d := ft.NextHop(r, src, dst, classTable)
		link, ok := ft.topo.Neighbor(r, d.OutPort)
		if !ok {
			break
		}
		r = link.Router
		path = append(path, r)
		if len(path) > ft.topo.NumRouters() {
			break // defensive: malformed table
		}
	}
	return path
}
