package routing

import (
	"container/heap"
	"errors"
	"fmt"

	"heteronoc/internal/topology"
)

// ErrUnreachable reports that no live path exists between two terminals
// after link/router failures. Callers (the NI reliability layer, the
// experiments) surface it instead of letting packets hang in the network.
var ErrUnreachable = errors.New("routing: destination unreachable")

// FaultAware is implemented by algorithms that can route around failed
// links. The simulator calls Rebuild after applying each permanent fault;
// NextHop then never selects a dead port, and destinations severed from a
// source are reported via Reachable/RouteError rather than by wedging.
type FaultAware interface {
	Algorithm
	// Rebuild recomputes all routes over the live links in ls. A nil ls
	// restores the fault-free routes.
	Rebuild(ls *topology.LinkState)
	// Reachable reports whether a live path exists from terminal src to
	// terminal dst.
	Reachable(src, dst int) bool
	// RouteError returns nil when dst is reachable from src and an error
	// wrapping ErrUnreachable otherwise.
	RouteError(src, dst int) error
}

// FaultTable is table-based routing that survives link and router
// failures. Primary paths are per-destination shortest paths over the live
// links (big routers break ties, so on HeteroNoC layouts equal-length
// paths gravitate to the wide diagonal routers); because they take
// turns in both orders they are not deadlock free on their own, so a
// reserved escape VC (VC 0) drains starved packets over a spanning forest
// of the live links. Paths restricted to a tree ascend toward the root and
// then descend, which admits no cyclic channel dependency, so the escape
// sub-network stays deadlock free no matter which links have died.
//
// When a permanent fault partitions the network, NextHop returns a
// decision with OutPort < 0 for severed destinations and Reachable reports
// false; the simulator drops such packets with a stat instead of hanging.
type FaultTable struct {
	topo        topology.Topology
	big         []bool
	escapeAfter int
	ls          *topology.LinkState
	// next[dst][router] is the output port toward terminal dst on the
	// primary network, -1 when dst is unreachable from router.
	next [][]int16
	// tree[dst][router] is the output port toward terminal dst restricted
	// to the escape spanning forest, -1 when unreachable.
	tree [][]int16
}

// FaultTableConfig parameterizes table construction.
type FaultTableConfig struct {
	// Big marks big routers by router ID; among equal-length shortest
	// paths the table prefers ones through big routers (nil = no bias).
	Big []bool
	// EscapeThreshold is the VA starvation limit in cycles before a packet
	// is diverted to the escape forest (default 64).
	EscapeThreshold int
}

// NewFaultTable builds fault-free routes for t; call Rebuild as failures
// accumulate.
func NewFaultTable(t topology.Topology, cfg FaultTableConfig) *FaultTable {
	ft := &FaultTable{
		topo:        t,
		big:         cfg.Big,
		escapeAfter: cfg.EscapeThreshold,
	}
	if ft.escapeAfter <= 0 {
		ft.escapeAfter = 64
	}
	if ft.big == nil {
		ft.big = make([]bool, t.NumRouters())
	}
	ft.next = make([][]int16, t.NumTerminals())
	ft.tree = make([][]int16, t.NumTerminals())
	ft.Rebuild(nil)
	return ft
}

// Rebuild recomputes the primary tables and the escape forest over the
// live links in ls (nil = all links up). It runs one Dijkstra pass per
// destination plus one BFS forest construction, deterministic in both
// iteration order and tie-breaking, so identical failure histories yield
// identical tables.
func (ft *FaultTable) Rebuild(ls *topology.LinkState) {
	if ls == nil {
		ls = topology.NewLinkState(ft.topo)
	}
	ft.ls = ls
	treeAdj := ft.buildForest()
	for dst := 0; dst < ft.topo.NumTerminals(); dst++ {
		ft.next[dst] = ft.buildDst(dst)
		ft.tree[dst] = ft.buildTreeDst(dst, treeAdj)
	}
}

// buildDst runs Dijkstra from the destination router backwards over the
// reversed live-link graph, producing next[router] = output port. Unlike
// TableXY the edge set is not restricted to minimal directions — after a
// failure the surviving shortest path may detour arbitrarily.
func (ft *FaultTable) buildDst(dst int) []int16 {
	dstR, _ := ft.topo.TerminalRouter(dst)
	n := ft.topo.NumRouters()
	dist := make([]int, n)
	next := make([]int16, n)
	for i := range dist {
		dist[i] = 1 << 30
		next[i] = -1
	}
	if ft.ls.RouterFailed(dstR) {
		return next
	}
	dist[dstR] = 0
	pq := &intHeap{{0, dstR}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.prio > dist[it.v] {
			continue
		}
		r := it.v
		// Relax predecessors: routers u with a live edge u->r. By link
		// symmetry, the edge from u into port p of r leaves u on port
		// link.Port.
		for p := 0; p < ft.topo.Radix(r); p++ {
			if !ft.ls.Up(r, p) {
				continue
			}
			link, _ := ft.topo.Neighbor(r, p)
			u := link.Router
			// Big routers win ties only: a simple path has fewer than n
			// hops, so discounts of 1 against a per-hop cost of n can never
			// sum to a full hop. Routes gravitate to the wide diagonal among
			// equal-length paths but never pay an extra hop for it.
			c := n
			if ft.big[r] {
				c--
			}
			if nd := dist[r] + c; nd < dist[u] {
				dist[u] = nd
				next[u] = int16(link.Port)
				heap.Push(pq, heapItem{nd, u})
			}
		}
	}
	return next
}

// buildForest constructs a BFS spanning forest of the live-link graph and
// returns, per router, the ports that are forest edges. Every component is
// rooted at its lowest-numbered live router.
func (ft *FaultTable) buildForest() [][]int16 {
	n := ft.topo.NumRouters()
	adj := make([][]int16, n)
	seen := make([]bool, n)
	var queue []int
	for root := 0; root < n; root++ {
		if seen[root] || ft.ls.RouterFailed(root) {
			continue
		}
		seen[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			for p := 0; p < ft.topo.Radix(r); p++ {
				if !ft.ls.Up(r, p) {
					continue
				}
				link, _ := ft.topo.Neighbor(r, p)
				if seen[link.Router] {
					continue
				}
				seen[link.Router] = true
				adj[r] = append(adj[r], int16(p))
				adj[link.Router] = append(adj[link.Router], int16(link.Port))
				queue = append(queue, link.Router)
			}
		}
	}
	return adj
}

// buildTreeDst BFSes from the destination router over forest edges only,
// producing the escape next-hop table. Within a tree the path between any
// two routers is unique, so this is exactly "up to the common ancestor,
// then down".
func (ft *FaultTable) buildTreeDst(dst int, treeAdj [][]int16) []int16 {
	dstR, _ := ft.topo.TerminalRouter(dst)
	n := ft.topo.NumRouters()
	next := make([]int16, n)
	for i := range next {
		next[i] = -1
	}
	if ft.ls.RouterFailed(dstR) {
		return next
	}
	seen := make([]bool, n)
	seen[dstR] = true
	queue := []int{dstR}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, p := range treeAdj[r] {
			link, _ := ft.topo.Neighbor(r, int(p))
			u := link.Router
			if seen[u] {
				continue
			}
			seen[u] = true
			next[u] = int16(link.Port)
			queue = append(queue, u)
		}
	}
	return next
}

func (ft *FaultTable) Name() string      { return "fault-table" }
func (ft *FaultTable) NumVCClasses() int { return 2 }

func (ft *FaultTable) InitialClass(src, dst int) int { return classTable }

func (ft *FaultTable) ClassVCs(class, numVCs int) (int, int) {
	switch class {
	case classEscape:
		return 0, 1
	default:
		if numVCs == 1 {
			return 0, 1
		}
		return 1, numVCs
	}
}

func (ft *FaultTable) NextHop(r, src, dst, class int) Decision {
	if class == classEscape {
		return ft.EscapeHop(r, src, dst)
	}
	dstR, dstP := ft.topo.TerminalRouter(dst)
	if ft.ls.RouterFailed(dstR) {
		return Decision{OutPort: -1, VCClass: classTable}
	}
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: classTable}
	}
	return Decision{OutPort: int(ft.next[dst][r]), VCClass: classTable}
}

// EscapeHop diverts a starved packet to the spanning-forest escape VC.
func (ft *FaultTable) EscapeHop(r, src, dst int) Decision {
	dstR, dstP := ft.topo.TerminalRouter(dst)
	if ft.ls.RouterFailed(dstR) {
		return Decision{OutPort: -1, VCClass: classEscape}
	}
	if r == dstR {
		return Decision{OutPort: dstP, VCClass: classEscape}
	}
	return Decision{OutPort: int(ft.tree[dst][r]), VCClass: classEscape}
}

// EscapeThreshold returns the VA starvation limit in cycles.
func (ft *FaultTable) EscapeThreshold() int { return ft.escapeAfter }

// Reachable reports whether a live path exists from terminal src to
// terminal dst.
func (ft *FaultTable) Reachable(src, dst int) bool {
	srcR, _ := ft.topo.TerminalRouter(src)
	dstR, _ := ft.topo.TerminalRouter(dst)
	if ft.ls.RouterFailed(srcR) || ft.ls.RouterFailed(dstR) {
		return false
	}
	return srcR == dstR || ft.next[dst][srcR] >= 0
}

// RouteError returns nil when dst is reachable from src, and an error
// wrapping ErrUnreachable otherwise.
func (ft *FaultTable) RouteError(src, dst int) error {
	if ft.Reachable(src, dst) {
		return nil
	}
	return fmt.Errorf("%w (terminal %d -> %d with %d links down)", ErrUnreachable, src, dst, ft.ls.NumDownLinks())
}

// PathRouters returns the primary-path router sequence from terminal src
// to terminal dst, or nil when dst is unreachable. Tests use it to check
// rebuilt paths avoid dead links.
func (ft *FaultTable) PathRouters(src, dst int) []int {
	r, _ := ft.topo.TerminalRouter(src)
	dstR, _ := ft.topo.TerminalRouter(dst)
	if !ft.Reachable(src, dst) {
		return nil
	}
	path := []int{r}
	for r != dstR {
		d := ft.NextHop(r, src, dst, classTable)
		link, ok := ft.topo.Neighbor(r, d.OutPort)
		if !ok {
			break
		}
		r = link.Router
		path = append(path, r)
		if len(path) > ft.topo.NumRouters() {
			break // defensive: malformed table
		}
	}
	return path
}
