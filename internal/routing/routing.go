// Package routing implements the routing algorithms used in the HeteroNoC
// study: deterministic X-Y on meshes, dateline X-Y on tori, row-column
// routing on flattened butterflies, and table-based routing with escape
// virtual channels for the asymmetric-CMP case study.
//
// An Algorithm is a per-hop function from (router, src, dst, vc class) to
// (output port, next vc class). VC classes partition the virtual channels of
// each port for deadlock avoidance; the simulator restricts VC allocation to
// the range the algorithm reports for a class.
package routing

import "fmt"

// Decision is the outcome of one routing step.
type Decision struct {
	// OutPort is the output port at the current router.
	OutPort int
	// VCClass is the class the packet travels in on the next hop.
	VCClass int
}

// Algorithm decides the path of packets hop by hop.
type Algorithm interface {
	Name() string
	// NumVCClasses reports how many VC classes the algorithm distinguishes.
	NumVCClasses() int
	// InitialClass returns the VC class used to inject a packet.
	InitialClass(src, dst int) int
	// NextHop returns the routing decision at router r for a packet
	// traveling from terminal src to terminal dst in VC class class.
	NextHop(r, src, dst, class int) Decision
	// ClassVCs maps a VC class to the half-open range [lo, hi) of virtual
	// channel indices it may use on a port with numVCs virtual channels.
	ClassVCs(class, numVCs int) (lo, hi int)
}

// Escaper is implemented by algorithms (table-based routing) whose primary
// paths are not provably deadlock free. When a head flit has been unable to
// acquire a virtual channel for EscapeThreshold consecutive cycles, the
// simulator re-routes it with EscapeHop, which must return a decision on a
// deadlock-free sub-network (dimension-ordered routing on the reserved
// escape VC). Once a packet escapes it stays escaped to its destination.
type Escaper interface {
	EscapeHop(r, src, dst int) Decision
	EscapeThreshold() int
}

func fullRange(numVCs int) (int, int) { return 0, numVCs }

func validatePort(alg string, r, port int) {
	if port < 0 {
		panic(fmt.Sprintf("routing %s: negative output port at router %d", alg, r))
	}
}
