package routing

import (
	"container/heap"

	"heteronoc/internal/topology"
)

// This file keeps the original Dijkstra-per-destination builders as a
// test-only reference implementation. The production tables are built by
// the O(V*radix)-per-destination analytic passes in table.go and
// faulttable.go; the equivalence tests in builder_test.go require their
// output to stay bit-identical to these.

type heapItem struct {
	prio int
	v    int
}

type intHeap []heapItem

func (h intHeap) Len() int { return len(h) }
func (h intHeap) Less(i, j int) bool {
	return h[i].prio < h[j].prio || (h[i].prio == h[j].prio && h[i].v < h[j].v)
}
func (h intHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *intHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// refMinimalToward reports whether moving from router u to adjacent router
// v reduces the Manhattan distance to dstR.
func refMinimalToward(t *topology.Mesh, u, v, dstR int) bool {
	ux, uy := t.Coord(u)
	vx, vy := t.Coord(v)
	dx, dy := t.Coord(dstR)
	return abs(vx-dx)+abs(vy-dy) < abs(ux-dx)+abs(uy-dy)
}

// refTableXYDst is the original TableXY per-destination builder: Dijkstra
// from the destination router backwards over the reversed minimal-direction
// graph, a hop into a big router discounted by bigDiscount.
func refTableXYDst(t *topology.Mesh, big []bool, dst int) []int {
	dstR, _ := t.TerminalRouter(dst)
	n := t.NumRouters()
	dist := make([]int, n)
	next := make([]int, n)
	for i := range dist {
		dist[i] = 1 << 30
		next[i] = -1
	}
	dist[dstR] = 0
	pq := &intHeap{{0, dstR}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.prio > dist[it.v] {
			continue
		}
		r := it.v
		for p := topology.PortEast; p <= topology.PortSouth; p++ {
			link, ok := t.Neighbor(r, p)
			if !ok {
				continue
			}
			u := link.Router
			if !refMinimalToward(t, u, r, dstR) {
				continue
			}
			c := hopCost
			if big[r] {
				c -= bigDiscount
			}
			if nd := dist[r] + c; nd < dist[u] {
				dist[u] = nd
				next[u] = opposite(p)
				heap.Push(pq, heapItem{nd, u})
			}
		}
	}
	return next
}

// refFaultDst is the original FaultTable per-destination builder: Dijkstra
// from the destination router backwards over the reversed live-link graph,
// with cost n-big[r] per hop into r so big routers win ties but never
// lengthen a path.
func refFaultDst(t topology.Topology, ls *topology.LinkState, big []bool, dst int) []int16 {
	dstR, _ := t.TerminalRouter(dst)
	n := t.NumRouters()
	dist := make([]int, n)
	next := make([]int16, n)
	for i := range dist {
		dist[i] = 1 << 30
		next[i] = -1
	}
	if ls.RouterFailed(dstR) {
		return next
	}
	dist[dstR] = 0
	pq := &intHeap{{0, dstR}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.prio > dist[it.v] {
			continue
		}
		r := it.v
		for p := 0; p < t.Radix(r); p++ {
			if !ls.Up(r, p) {
				continue
			}
			link, _ := t.Neighbor(r, p)
			u := link.Router
			c := n
			if big[r] {
				c--
			}
			if nd := dist[r] + c; nd < dist[u] {
				dist[u] = nd
				next[u] = int16(link.Port)
				heap.Push(pq, heapItem{nd, u})
			}
		}
	}
	return next
}
