// Package reqstat carries per-request accounting through a context.
// The run server handles many tenants' requests concurrently over one
// process-global run cache, so the global hit/miss counters cannot tell an
// individual request "you were served warm" — concurrent requests
// interleave their deltas. Instead the service layer attaches a Collector
// to each request's context; the layers below (runcache lookups, the
// traffic and CMP step loops) charge whatever context they were handed.
// A request whose Collector shows zero executions and zero simulated
// cycles was answered entirely from cache.
//
// The package also maintains process-global progress counters (total
// simulated cycles and batch checkpoints) that serve as the liveness
// signal for stall watchdogs: a wedged or chaos-stalled run stops the
// counter, and /healthz notices.
package reqstat

import (
	"context"
	"sync/atomic"
)

// Collector accumulates one request's charges. All fields are safe for
// concurrent use: a single request fans out across the par worker pool.
type Collector struct {
	// CacheHits / CacheMisses count runcache lookups charged to this
	// request. A hit includes joining a concurrent caller's in-flight
	// execution (singleflight).
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Executions counts cache misses that actually ran a recipe under
	// this request (as opposed to being answered by the disk tier).
	Executions atomic.Int64
	// Cycles counts simulated cycles (network + CMP) charged to this
	// request.
	Cycles atomic.Int64
}

type ctxKey struct{}

// WithCollector attaches c to the context.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the request's Collector, or nil when none is
// attached (library callers outside the serve path).
func FromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}

// Process-global progress counters (see package comment).
var (
	globalCycles  atomic.Int64
	globalBatches atomic.Int64
)

// AddCycles charges n simulated cycles to the request's collector (if
// any) and to the global progress counter.
func AddCycles(ctx context.Context, n int64) {
	globalCycles.Add(n)
	globalBatches.Add(1)
	if c := FromContext(ctx); c != nil {
		c.Cycles.Add(n)
	}
}

// Hit charges one cache hit.
func Hit(ctx context.Context) {
	if c := FromContext(ctx); c != nil {
		c.CacheHits.Add(1)
	}
}

// Miss charges one cache miss (the request executed a lookup that found
// no memoized result; the disk tier may still answer it).
func Miss(ctx context.Context) {
	if c := FromContext(ctx); c != nil {
		c.CacheMisses.Add(1)
	}
}

// Exec charges one recipe execution: a miss that no tier could answer,
// so real simulation work ran under this request.
func Exec(ctx context.Context) {
	if c := FromContext(ctx); c != nil {
		c.Executions.Add(1)
	}
}

// GlobalProgress returns a monotonically non-decreasing counter that
// advances whenever any run in the process makes forward progress — the
// stall-watchdog signal for the run server.
func GlobalProgress() int64 { return globalCycles.Load() + globalBatches.Load() }
