// Package trace generates the synthetic per-core memory traces that stand
// in for the paper's Simics-collected commercial and PARSEC workloads (see
// DESIGN.md §4 for the substitution rationale). Each benchmark is a
// parameterized profile — memory intensity, working-set size, read/write
// mix, sharing degree, spatial locality, burstiness — with fixed seeds so
// every run of every experiment sees the same instruction stream.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// Entry is one trace record: Gap non-memory instructions followed by one
// memory operation.
type Entry struct {
	Gap   int
	Addr  uint64
	Write bool
}

// Reader produces an endless instruction stream.
type Reader interface {
	Next() Entry
}

// BatchReader is a Reader that can decode many entries per call. NextBatch
// fills out and returns how many entries were produced — always len(out)
// for generators (endless streams), possibly fewer at the end of a file.
// The caller owns out; implementations must not retain it, so steady-state
// consumption is allocation-free on both sides.
type BatchReader interface {
	Reader
	NextBatch(out []Entry) int
}

// Stateful is a Reader whose complete position — RNG register, address
// walk, file offset — can be captured and restored in O(1), without
// replaying the stream. cmp warm-checkpoint restore uses this to land
// readers on their post-warmup position directly instead of calling
// Next() in an O(warmup-length) replay loop.
type Stateful interface {
	Reader
	// SaveState returns an opaque snapshot of the reader's position.
	SaveState() []byte
	// RestoreState repositions the reader to a SaveState snapshot. After a
	// successful restore the stream continues exactly as it would have on
	// the original reader.
	RestoreState(state []byte) error
}

// Seeker is a Reader addressable by entry index: SeekTo(n) leaves the
// reader positioned as if n entries had been consumed since the start.
// File-backed readers implement this with one index lookup + one chunk
// decode (see ChunkReader); generators generally cannot (their position
// is RNG state, not an index) and implement Stateful instead.
type Seeker interface {
	Reader
	// Pos returns the number of entries consumed so far.
	Pos() int64
	// Seek repositions to just after entry n-1 (SeekTo(0) rewinds).
	SeekTo(n int64) error
}

// Profile parameterizes a synthetic benchmark.
type Profile struct {
	Name string
	// MeanGap is the average number of non-memory instructions between
	// memory operations (lower = more memory bound).
	MeanGap float64
	// FootprintLines is the per-core working set in cache lines.
	FootprintLines int
	// SharedFrac is the fraction of accesses that touch the globally
	// shared region (driving coherence traffic).
	SharedFrac float64
	// SharedLines is the size of the shared region in lines.
	SharedLines int
	// WriteFrac is the fraction of memory operations that are stores.
	WriteFrac float64
	// Locality is the probability that the next access stays on the same
	// or adjacent line (spatial locality / streaming).
	Locality float64
	// Burst is the probability of a zero-gap follow-on access (memory-level
	// parallelism bursts).
	Burst float64
	// HotFrac concentrates this fraction of shared accesses on a small
	// hot set (lock/metadata contention).
	HotFrac float64
}

// Profiles returns the benchmark suite of Table 2: four commercial
// workloads, six PARSEC applications/kernels, and libquantum for the
// asymmetric-CMP study. Parameters are chosen to mimic each workload's
// published character (memory intensity, sharing, burstiness); absolute
// IPCs are not meaningful, homo-vs-hetero deltas are.
func Profiles() []Profile {
	return []Profile{
		// Commercial server workloads: large footprints, heavy sharing.
		{Name: "SAP", MeanGap: 6, FootprintLines: 3000, SharedFrac: 0.35, SharedLines: 1500, WriteFrac: 0.30, Locality: 0.75, Burst: 0.35, HotFrac: 0.02},
		{Name: "SPECjbb", MeanGap: 7, FootprintLines: 2500, SharedFrac: 0.30, SharedLines: 1200, WriteFrac: 0.28, Locality: 0.78, Burst: 0.30, HotFrac: 0.02},
		{Name: "TPC-C", MeanGap: 5, FootprintLines: 4000, SharedFrac: 0.40, SharedLines: 2000, WriteFrac: 0.35, Locality: 0.70, Burst: 0.40, HotFrac: 0.03},
		{Name: "SJAS", MeanGap: 7, FootprintLines: 2800, SharedFrac: 0.32, SharedLines: 1400, WriteFrac: 0.30, Locality: 0.76, Burst: 0.32, HotFrac: 0.02},
		// PARSEC applications.
		{Name: "ferret", MeanGap: 9, FootprintLines: 2000, SharedFrac: 0.25, SharedLines: 1000, WriteFrac: 0.22, Locality: 0.82, Burst: 0.25, HotFrac: 0.02},
		{Name: "facesim", MeanGap: 10, FootprintLines: 2200, SharedFrac: 0.18, SharedLines: 800, WriteFrac: 0.25, Locality: 0.84, Burst: 0.22, HotFrac: 0.015},
		{Name: "vips", MeanGap: 11, FootprintLines: 1800, SharedFrac: 0.15, SharedLines: 600, WriteFrac: 0.24, Locality: 0.85, Burst: 0.20, HotFrac: 0.01},
		// PARSEC kernels.
		{Name: "canneal", MeanGap: 6, FootprintLines: 5000, SharedFrac: 0.45, SharedLines: 2500, WriteFrac: 0.26, Locality: 0.55, Burst: 0.30, HotFrac: 0.01},
		{Name: "dedup", MeanGap: 8, FootprintLines: 3000, SharedFrac: 0.30, SharedLines: 1400, WriteFrac: 0.32, Locality: 0.78, Burst: 0.28, HotFrac: 0.02},
		{Name: "streamcluster", MeanGap: 7, FootprintLines: 2500, SharedFrac: 0.35, SharedLines: 1200, WriteFrac: 0.18, Locality: 0.86, Burst: 0.35, HotFrac: 0.02},
		// Latency-sensitive single-threaded benchmark for Section 7: very
		// regular streaming with low MLP.
		{Name: "libquantum", MeanGap: 4, FootprintLines: 8000, SharedFrac: 0.0, SharedLines: 0, WriteFrac: 0.25, Locality: 0.88, Burst: 0.10, HotFrac: 0},
	}
}

// ProfileByName finds a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Names lists the profile names in suite order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// CommercialNames returns the four commercial workloads (Figure 12(a)).
func CommercialNames() []string { return []string{"SAP", "SPECjbb", "TPC-C", "SJAS"} }

// PARSECNames returns the six PARSEC workloads (Figure 12(b)).
func PARSECNames() []string {
	return []string{"ferret", "facesim", "vips", "canneal", "dedup", "streamcluster"}
}

// Fig11Names returns the six workloads shown in the Figure 11 breakdowns.
func Fig11Names() []string {
	return []string{"SAP", "SPECjbb", "ferret", "vips", "dedup", "streamcluster"}
}

// Generator is a deterministic synthetic trace for one core. Its RNG is
// an lfgSource — stream-identical to the math/rand source it historically
// used (TestLFGMatchesMathRand), but with a serializable register, which
// makes the whole generator Stateful: SaveState/RestoreState capture the
// exact stream position in O(1).
type Generator struct {
	p    Profile
	core int
	src  *lfgSource
	rng  *rand.Rand
	// address regions, in line units
	sharedBase  uint64
	privateBase uint64
	hotLines    int
	lastLine    uint64
	lineBytes   uint64
	pos         int64
}

// NewGenerator builds the trace source for one core of a benchmark. The
// address space layout: a shared region at 0, then per-core private
// regions, all in units of lineBytes.
func NewGenerator(p Profile, core int, lineBytes int) *Generator {
	return NewGeneratorAt(p, core, lineBytes, 0)
}

// NewGeneratorAt places the benchmark's whole address space at baseLine
// (in line units). Mixed-workload runs (the asymmetric-CMP study) must
// give each program a disjoint base or their synthetic "private" regions
// would alias across programs.
func NewGeneratorAt(p Profile, core int, lineBytes int, baseLine uint64) *Generator {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", p.Name, core)
	src := newLFG(int64(h.Sum64() & 0x7fffffffffffffff))
	g := &Generator{
		p:         p,
		core:      core,
		src:       src,
		rng:       rand.New(src),
		lineBytes: uint64(lineBytes),
	}
	g.sharedBase = baseLine
	g.privateBase = baseLine + uint64(p.SharedLines) + uint64(core)*uint64(p.FootprintLines)
	g.hotLines = p.SharedLines / 20
	if g.hotLines < 1 {
		g.hotLines = 1
	}
	g.lastLine = g.privateBase
	return g
}

// Next produces the next trace entry.
func (g *Generator) Next() Entry {
	g.pos++
	e := Entry{Write: g.rng.Float64() < g.p.WriteFrac}
	if g.rng.Float64() >= g.p.Burst {
		// Geometric gap with the profile's mean.
		if g.p.MeanGap > 0 {
			pStop := 1 / (1 + g.p.MeanGap)
			for g.rng.Float64() > pStop {
				e.Gap++
			}
		}
	}
	var line uint64
	switch {
	case g.rng.Float64() < g.p.Locality:
		// Spatial locality: mostly the same line, sometimes the next one
		// (streaming), wrapped so the walk stays inside its region
		// (private footprint or shared region).
		line = g.lastLine
		if g.rng.Float64() < 0.35 {
			line++
		}
		if g.lastLine >= g.privateBase {
			line = g.privateBase + (line-g.privateBase)%uint64(g.p.FootprintLines)
		} else if g.p.SharedLines > 0 {
			line = g.sharedBase + (line-g.sharedBase)%uint64(g.p.SharedLines)
		}
	case g.p.SharedFrac > 0 && g.rng.Float64() < g.p.SharedFrac:
		if g.p.HotFrac > 0 && g.rng.Float64() < g.p.HotFrac {
			line = g.sharedBase + uint64(g.rng.Intn(g.hotLines))
		} else {
			line = g.sharedBase + uint64(g.rng.Intn(g.p.SharedLines))
		}
	default:
		line = g.privateBase + uint64(g.rng.Intn(g.p.FootprintLines))
	}
	g.lastLine = line
	e.Addr = line * g.lineBytes
	return e
}

// NextBatch fills out with the next len(out) entries (generators never
// run dry) — the bulk API that amortizes per-entry interface dispatch for
// recording and morphing pipelines.
func (g *Generator) NextBatch(out []Entry) int {
	for i := range out {
		out[i] = g.Next()
	}
	return len(out)
}

// Pos returns the number of entries generated so far.
func (g *Generator) Pos() int64 { return g.pos }

// genStateVersion tags Generator state snapshots.
const genStateVersion = 1

// SaveState captures the generator's exact stream position: the RNG
// register plus the spatial-locality walk state. O(1) in the stream
// position (the register is a fixed ~4.9KB).
func (g *Generator) SaveState() []byte {
	dst := make([]byte, 0, 1+8+8+lfgStateLen)
	dst = append(dst, genStateVersion)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(g.pos))
	dst = binary.LittleEndian.AppendUint64(dst, g.lastLine)
	return g.src.saveTo(dst)
}

// RestoreState repositions the generator to a SaveState snapshot taken
// from a generator with the same construction parameters.
func (g *Generator) RestoreState(state []byte) error {
	if len(state) < 1+8+8 || state[0] != genStateVersion {
		return fmt.Errorf("trace: bad generator state (len %d)", len(state))
	}
	pos := int64(binary.LittleEndian.Uint64(state[1:9]))
	lastLine := binary.LittleEndian.Uint64(state[9:17])
	rest, ok := g.src.loadFrom(state[17:])
	if !ok || len(rest) != 0 {
		return fmt.Errorf("trace: bad generator RNG state (len %d)", len(state))
	}
	g.pos = pos
	g.lastLine = lastLine
	return nil
}

// URGenerator is the closed-loop uniform-random workload of the
// memory-controller case study: each access targets a uniformly random
// line in a 2^30-line span, so in any realistic run effectively every
// access is a cold miss and becomes a memory request. (Repeats are
// possible — birthday collisions appear after tens of thousands of draws
// — but rare enough that the occasional cache hit does not change the
// study's character.)
type URGenerator struct {
	src       *lfgSource
	rng       *rand.Rand
	next      uint64
	core      int
	span      uint64
	lineBytes uint64
}

// NewURGenerator builds the UR workload for one core: a uniform random
// walk over a per-core 2^30-line region (tagged by core in bits 40+, so
// cores never alias each other).
func NewURGenerator(core int, lineBytes int) *URGenerator {
	src := newLFG(int64(core)*7919 + 17)
	return &URGenerator{
		src:       src,
		rng:       rand.New(src),
		core:      core,
		span:      1 << 30,
		lineBytes: uint64(lineBytes),
	}
}

// Next returns the next uniform-random read. The fixed Gap of 2 models a
// thin compute strand between accesses; it keeps the workload closed-loop
// (MSHR-limited) rather than literally back-to-back.
func (g *URGenerator) Next() Entry {
	g.next++
	line := (uint64(g.rng.Int63()) % g.span) | (uint64(g.core) << 40)
	return Entry{Gap: 2, Addr: line * g.lineBytes, Write: false}
}

// NextBatch fills out (generators never run dry).
func (g *URGenerator) NextBatch(out []Entry) int {
	for i := range out {
		out[i] = g.Next()
	}
	return len(out)
}

// Pos returns the number of entries generated so far.
func (g *URGenerator) Pos() int64 { return int64(g.next) }

// urStateVersion tags URGenerator state snapshots.
const urStateVersion = 2

// SaveState captures the exact stream position (RNG register + count).
func (g *URGenerator) SaveState() []byte {
	dst := make([]byte, 0, 1+8+lfgStateLen)
	dst = append(dst, urStateVersion)
	dst = binary.LittleEndian.AppendUint64(dst, g.next)
	return g.src.saveTo(dst)
}

// RestoreState repositions the generator to a SaveState snapshot.
func (g *URGenerator) RestoreState(state []byte) error {
	if len(state) < 1+8 || state[0] != urStateVersion {
		return fmt.Errorf("trace: bad UR generator state (len %d)", len(state))
	}
	next := binary.LittleEndian.Uint64(state[1:9])
	rest, ok := g.src.loadFrom(state[9:])
	if !ok || len(rest) != 0 {
		return fmt.Errorf("trace: bad UR generator RNG state (len %d)", len(state))
	}
	g.next = next
	return nil
}

// SortedProfileNames returns all names sorted (for stable iteration in
// diagnostics).
func SortedProfileNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
