package trace

import (
	"bytes"
	"testing"
)

// bareReader hides every optional capability of a Reader, forcing Morph
// down its non-batch, non-stateful paths.
type bareReader struct{ r Reader }

func (b *bareReader) Next() Entry { return b.r.Next() }

func TestMorphProfileScaling(t *testing.T) {
	p := Profile{Name: "x", FootprintLines: 1000, SharedLines: 100, SharedFrac: 0.3, Burst: 0.5, MeanGap: 20}
	got := MorphProfile(p, ProfileMorph{FootprintScale: 2, SharedScale: 2, BurstScale: 3, GapScale: 0.5})
	if got.FootprintLines != 2000 || got.SharedLines != 200 {
		t.Errorf("footprint scale: %d/%d", got.FootprintLines, got.SharedLines)
	}
	if got.SharedFrac != 0.6 {
		t.Errorf("SharedFrac %g", got.SharedFrac)
	}
	if got.Burst != 1.0 { // 0.5*3 clamps to 1
		t.Errorf("Burst %g not clamped", got.Burst)
	}
	if got.MeanGap != 10 {
		t.Errorf("MeanGap %g", got.MeanGap)
	}
	// Zero-valued morph is the identity.
	if id := MorphProfile(p, ProfileMorph{}); id != p {
		t.Errorf("zero morph changed profile: %+v", id)
	}
	// Scaling never drops a positive knob to zero.
	small := MorphProfile(Profile{FootprintLines: 3}, ProfileMorph{FootprintScale: 0.01})
	if small.FootprintLines != 1 {
		t.Errorf("FootprintLines %d, want floor of 1", small.FootprintLines)
	}
}

func TestMorphDeterminism(t *testing.T) {
	p, err := ProfileByName("TPC-C")
	if err != nil {
		t.Fatal(err)
	}
	spec := MorphSpec{HotspotFrac: 0.3, HotspotLines: 8, HotTile: 5, IncastFrac: 0.2, IncastMC: 1, IncastMCs: 4, GapScale: 0.7}
	// Entry-at-a-time and batched reads of the same seeded morph must
	// produce the identical stream (one class draw per entry either way).
	one := NewMorph(NewGenerator(p, 2, 128), spec, 16, 128, 99)
	batch := NewMorph(NewGenerator(p, 2, 128), spec, 16, 128, 99)
	bare := NewMorph(&bareReader{r: NewGenerator(p, 2, 128)}, spec, 16, 128, 99)
	buf := make([]Entry, 64)
	for off := 0; off < 512; off += len(buf) {
		if n := batch.NextBatch(buf); n != len(buf) {
			t.Fatalf("short batch %d", n)
		}
		for i, e := range buf {
			if got := one.Next(); got != e {
				t.Fatalf("entry %d: Next %+v != NextBatch %+v", off+i, got, e)
			}
			if got := bare.Next(); got != e {
				t.Fatalf("entry %d: bare-source %+v != batch-source %+v", off+i, got, e)
			}
		}
	}
	if one.Pos() != 512 || batch.Pos() != 512 {
		t.Fatalf("Pos %d/%d, want 512", one.Pos(), batch.Pos())
	}
}

func TestMorphHotspotTargeting(t *testing.T) {
	p, err := ProfileByName("TPC-C")
	if err != nil {
		t.Fatal(err)
	}
	const tiles, lineBytes, hot, lines = 16, 128, 7, 16
	m := NewMorph(NewGenerator(p, 0, lineBytes), MorphSpec{HotspotFrac: 1.0, HotspotLines: lines, HotTile: hot}, tiles, lineBytes, 1)
	for i := 0; i < 2000; i++ {
		e := m.Next()
		line := e.Addr / lineBytes
		if line%tiles != hot {
			t.Fatalf("entry %d: line %d homes at tile %d, want %d", i, line, line%tiles, hot)
		}
		if line/tiles >= lines {
			t.Fatalf("entry %d: line %d outside the %d-line hot set", i, line, lines)
		}
	}
	// A fractional hotspot leaves the rest of the stream untouched.
	frac := NewMorph(NewGenerator(p, 0, lineBytes), MorphSpec{HotspotFrac: 0.4, HotspotLines: lines, HotTile: hot}, tiles, lineBytes, 1)
	hits := 0
	const n = 5000
	for i := 0; i < n; i++ {
		line := frac.Next().Addr / lineBytes
		if line%tiles == hot && line/tiles < lines {
			hits++
		}
	}
	if f := float64(hits) / n; f < 0.35 || f > 0.55 {
		t.Fatalf("hotspot fraction %.3f far from 0.40", f)
	}
}

func TestMorphIncastTargeting(t *testing.T) {
	p, err := ProfileByName("SPECjbb")
	if err != nil {
		t.Fatal(err)
	}
	const tiles, lineBytes, mc, mcs = 16, 128, 2, 4
	src := NewGenerator(p, 1, lineBytes)
	ref := NewGenerator(p, 1, lineBytes)
	m := NewMorph(src, MorphSpec{IncastFrac: 1.0, IncastMC: mc, IncastMCs: mcs}, tiles, lineBytes, 3)
	for i := 0; i < 2000; i++ {
		orig := ref.Next()
		e := m.Next()
		line, origLine := e.Addr/lineBytes, orig.Addr/lineBytes
		// The MC selector (line/tiles % mcs) must land on the target MC...
		if (line/tiles)%mcs != mc {
			t.Fatalf("entry %d: line %d selects MC %d, want %d", i, line, (line/tiles)%mcs, mc)
		}
		// ...while the home tile and the high address bits are preserved.
		if line%tiles != origLine%tiles {
			t.Fatalf("entry %d: home tile changed %d -> %d", i, origLine%tiles, line%tiles)
		}
		if line/(tiles*mcs) != origLine/(tiles*mcs) {
			t.Fatalf("entry %d: high bits changed %d -> %d", i, origLine/(tiles*mcs), line/(tiles*mcs))
		}
	}
}

func TestMorphStateful(t *testing.T) {
	p, err := ProfileByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	spec := MorphSpec{HotspotFrac: 0.5, HotspotLines: 4, HotTile: 3, GapScale: 0.9}
	m := NewMorph(NewGenerator(p, 0, 128), spec, 16, 128, 42)
	for i := 0; i < 333; i++ {
		m.Next()
	}
	state := m.SaveState()
	if state == nil {
		t.Fatal("SaveState nil for stateful source")
	}
	want := make([]Entry, 200)
	m.NextBatch(want)

	fresh := NewMorph(NewGenerator(p, 0, 128), spec, 16, 128, 0) // seed overwritten by restore
	if err := fresh.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if fresh.Pos() != 333 {
		t.Fatalf("Pos %d after restore, want 333", fresh.Pos())
	}
	got := make([]Entry, 200)
	fresh.NextBatch(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d after restore: %+v != %+v", i, got[i], want[i])
		}
	}
	if err := fresh.RestoreState(state[:10]); err == nil {
		t.Error("short state accepted")
	}

	// A non-stateful source degrades to the replay contract: SaveState
	// returns nil (cmp falls back to Next replay), RestoreState errors.
	bare := NewMorph(&bareReader{r: NewGenerator(p, 0, 128)}, spec, 16, 128, 42)
	if st := bare.SaveState(); st != nil {
		t.Fatalf("SaveState on bare source: %v", st)
	}
	if err := bare.RestoreState(state); err == nil {
		t.Error("RestoreState on bare source accepted")
	}
}

func TestNewWorkloadReader(t *testing.T) {
	// Plain Table 2 profiles resolve to plain generators.
	r, err := NewWorkloadReader("TPC-C", 0, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*Generator); !ok {
		t.Fatalf("profile workload resolved to %T", r)
	}
	// Every adversarial name resolves.
	for _, name := range AdversarialNames() {
		if _, err := NewWorkloadReader(name, 0, 128, 16); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Spec-less workloads (profile morph only) skip the Morph wrapper.
	if r, _ := NewWorkloadReader("thrash", 0, 128, 16); r != nil {
		if _, ok := r.(*Generator); !ok {
			t.Fatalf("thrash resolved to %T, want bare generator", r)
		}
	}
	// Two workloads sharing a base profile still get distinct streams.
	a, _ := NewWorkloadReader("shared-storm", 0, 128, 16)
	b, _ := NewWorkloadReader("thrash", 0, 128, 16)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shared-storm and thrash produce the same stream")
	}
	// The stream depends only on (name, core, lineBytes, tiles): two
	// constructions are bit-identical.
	x, _ := NewWorkloadReader("hotspot", 4, 128, 64)
	y, _ := NewWorkloadReader("hotspot", 4, 128, 64)
	for i := 0; i < 500; i++ {
		if ex, ey := x.Next(), y.Next(); ex != ey {
			t.Fatalf("entry %d: %+v != %+v", i, ex, ey)
		}
	}
	// Unknown names report both namespaces.
	_, err = NewWorkloadReader("nope", 0, 128, 16)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if s := err.Error(); !bytes.Contains([]byte(s), []byte("TPC-C")) || !bytes.Contains([]byte(s), []byte("mc-incast")) {
		t.Fatalf("error does not list namespaces: %v", err)
	}

	trs, err := WorkloadTraces("mc-incast", 16, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 16 {
		t.Fatalf("WorkloadTraces returned %d readers", len(trs))
	}
	// Per-core streams differ (the core index seeds each one).
	if trs[0].Next() == trs[1].Next() && trs[0].Next() == trs[1].Next() && trs[0].Next() == trs[1].Next() {
		t.Fatal("cores 0 and 1 look identical")
	}
}

func TestMorphGapScale(t *testing.T) {
	p, err := ProfileByName("TPC-C")
	if err != nil {
		t.Fatal(err)
	}
	ref := NewGenerator(p, 0, 128)
	m := NewMorph(NewGenerator(p, 0, 128), MorphSpec{GapScale: 0.5}, 16, 128, 7)
	for i := 0; i < 1000; i++ {
		orig, got := ref.Next(), m.Next()
		want := int(float64(orig.Gap)*0.5 + 0.5)
		if got.Gap != want {
			t.Fatalf("entry %d: gap %d, want %d (orig %d)", i, got.Gap, want, orig.Gap)
		}
		if got.Addr != orig.Addr || got.Write != orig.Write {
			t.Fatalf("entry %d: gap-only morph changed addr/write", i)
		}
	}
}
