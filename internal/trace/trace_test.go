package trace

import (
	"bytes"
	"testing"
)

func TestProfilesComplete(t *testing.T) {
	if len(Profiles()) != 11 {
		t.Fatalf("%d profiles, want 11 (4 commercial + 6 PARSEC + libquantum)", len(Profiles()))
	}
	if len(CommercialNames()) != 4 || len(PARSECNames()) != 6 {
		t.Error("suite name lists wrong")
	}
	for _, n := range append(CommercialNames(), PARSECNames()...) {
		if _, err := ProfileByName(n); err != nil {
			t.Errorf("missing profile %s", n)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ProfileByName("SAP")
	a := NewGenerator(p, 3, 128)
	b := NewGenerator(p, 3, 128)
	for i := 0; i < 1000; i++ {
		ea, eb := a.Next(), b.Next()
		if ea != eb {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestGeneratorsDifferAcrossCores(t *testing.T) {
	p, _ := ProfileByName("SAP")
	a := NewGenerator(p, 0, 128)
	b := NewGenerator(p, 1, 128)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 20 {
		t.Errorf("cores produced %d/200 identical entries", same)
	}
}

func TestMeanGapRoughlyMatchesProfile(t *testing.T) {
	p, _ := ProfileByName("vips") // MeanGap 11, Burst 0.20
	g := NewGenerator(p, 0, 128)
	total := 0
	const n = 50000
	for i := 0; i < n; i++ {
		total += g.Next().Gap
	}
	mean := float64(total) / n
	want := p.MeanGap * (1 - p.Burst)
	if mean < want*0.9 || mean > want*1.1 {
		t.Errorf("mean gap %.2f, want ~%.2f", mean, want)
	}
}

func TestWriteFraction(t *testing.T) {
	p, _ := ProfileByName("TPC-C")
	g := NewGenerator(p, 0, 128)
	writes := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < p.WriteFrac-0.02 || frac > p.WriteFrac+0.02 {
		t.Errorf("write fraction %.3f, want ~%.2f", frac, p.WriteFrac)
	}
}

func TestSharedRegionAccessed(t *testing.T) {
	p, _ := ProfileByName("canneal")
	g0 := NewGenerator(p, 0, 128)
	g1 := NewGenerator(p, 1, 128)
	lines0 := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		lines0[g0.Next().Addr/128] = true
	}
	sharedHits := 0
	for i := 0; i < 20000; i++ {
		if lines0[g1.Next().Addr/128] {
			sharedHits++
		}
	}
	if sharedHits == 0 {
		t.Error("no cross-core line overlap for a sharing-heavy benchmark")
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	p, _ := ProfileByName("libquantum") // SharedFrac 0: purely private
	g0 := NewGenerator(p, 0, 128)
	g1 := NewGenerator(p, 1, 128)
	lines0 := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		lines0[g0.Next().Addr/128] = true
	}
	for i := 0; i < 5000; i++ {
		if lines0[g1.Next().Addr/128] {
			t.Fatal("private footprints overlap")
		}
	}
}

func TestAddressesLineAligned(t *testing.T) {
	p, _ := ProfileByName("SPECjbb")
	g := NewGenerator(p, 2, 128)
	for i := 0; i < 1000; i++ {
		if e := g.Next(); e.Addr%128 != 0 {
			t.Fatalf("unaligned address %#x", e.Addr)
		}
	}
}

func TestURGeneratorColdMisses(t *testing.T) {
	g := NewURGenerator(0, 128)
	seen := map[uint64]bool{}
	dups := 0
	for i := 0; i < 20000; i++ {
		a := g.Next().Addr
		if seen[a] {
			dups++
		}
		seen[a] = true
	}
	if dups > 10 {
		t.Errorf("%d duplicate addresses in UR stream", dups)
	}
}

func TestURGeneratorsDisjointAcrossCores(t *testing.T) {
	a, b := NewURGenerator(0, 128), NewURGenerator(1, 128)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		seen[a.Next().Addr] = true
	}
	for i := 0; i < 5000; i++ {
		if seen[b.Next().Addr] {
			t.Fatal("UR address spaces overlap across cores")
		}
	}
}

func TestSummarizeMatchesProfile(t *testing.T) {
	p, _ := ProfileByName("TPC-C")
	st := Summarize(NewGenerator(p, 0, 128), 40000)
	if st.Entries != 40000 {
		t.Fatalf("entries %d", st.Entries)
	}
	if f := st.WriteFrac(); f < p.WriteFrac-0.03 || f > p.WriteFrac+0.03 {
		t.Errorf("write frac %.3f, want ~%.2f", f, p.WriteFrac)
	}
	if st.LocalityFrac() < 0.4 {
		t.Errorf("locality %.3f suspiciously low for TPC-C", st.LocalityFrac())
	}
	if st.DistinctLines < 1000 {
		t.Errorf("distinct lines %d too few", st.DistinctLines)
	}
	if st.MeanGap() <= 0 {
		t.Error("mean gap must be positive")
	}
}

func TestSummarizeFileUnbounded(t *testing.T) {
	p, _ := ProfileByName("vips")
	var buf bytes.Buffer
	if err := Record(&buf, NewGenerator(p, 1, 128), 2500); err != nil {
		t.Fatal(err)
	}
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(r, 0)
	if st.Entries != 2500 {
		t.Errorf("file summary entries %d, want 2500", st.Entries)
	}
}
