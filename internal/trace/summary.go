package trace

// TraceStats summarizes a trace stream for inspection tooling and for
// validating that synthetic profiles hit their targets.
type TraceStats struct {
	Entries       int64
	GapSum        int64
	Writes        int64
	DistinctLines int64
	LocalityHits  int64 // entries on the same or next line as their predecessor
}

// Instructions returns the total instruction count (gaps + memory ops).
func (s TraceStats) Instructions() int64 { return s.GapSum + s.Entries }

// MemFrac returns the fraction of instructions that are memory operations.
func (s TraceStats) MemFrac() float64 {
	if s.Instructions() == 0 {
		return 0
	}
	return float64(s.Entries) / float64(s.Instructions())
}

// WriteFrac returns the store fraction of memory operations.
func (s TraceStats) WriteFrac() float64 {
	if s.Entries == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Entries)
}

// MeanGap returns the average non-memory run length.
func (s TraceStats) MeanGap() float64 {
	if s.Entries == 0 {
		return 0
	}
	return float64(s.GapSum) / float64(s.Entries)
}

// LocalityFrac returns the same-or-next-line fraction.
func (s TraceStats) LocalityFrac() float64 {
	if s.Entries == 0 {
		return 0
	}
	return float64(s.LocalityHits) / float64(s.Entries)
}

// Summarize consumes up to n entries (or, for a file-backed reader that
// reports exhaustion, until the trace ends when n == 0) and aggregates
// statistics. Line granularity is 128 bytes, matching the system
// configuration.
func Summarize(r Reader, n int) TraceStats {
	var st TraceStats
	seen := make(map[uint64]struct{})
	var last uint64
	ex, isFile := r.(interface{ Exhausted() bool })
	for i := 0; ; i++ {
		if n > 0 && i >= n {
			break
		}
		e := r.Next()
		if isFile && ex.Exhausted() {
			break
		}
		if !isFile && n == 0 {
			break // unbounded summarize only makes sense for files
		}
		st.Entries++
		st.GapSum += int64(e.Gap)
		if e.Write {
			st.Writes++
		}
		line := e.Addr / 128
		if _, ok := seen[line]; !ok {
			seen[line] = struct{}{}
			st.DistinctLines++
		}
		if st.Entries > 1 && (line == last || line == last+1) {
			st.LocalityHits++
		}
		last = line
	}
	return st
}
