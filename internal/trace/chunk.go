package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// Chunked file format (HNTR2): the streaming successor to the flat HNTR
// v1 stream. v1 is a single delta chain — decoding entry n means decoding
// every entry before it, which is what forced warm-checkpoint restore
// into an O(n) Next() replay. v2 splits the stream into fixed-size
// chunks, each integrity-checked and independently decodable, with a
// footer index mapping entry counts to chunk offsets, so any position in
// the trace is reachable with one index lookup + one seek + one chunk
// decode.
//
//	header:  magic "HNTR2" | version u8 | reserved [2]byte
//	chunk:   body | crc32(body) fixed32-LE
//	  body:  count uvarint
//	         count × ( (gap<<1 | writeBit) uvarint | addrDelta zigzag-varint )
//	footer:  index | len(index) fixed32-LE | crc32(index) fixed32-LE | "HNXI"
//	  index: numChunks uvarint
//	         numChunks × ( chunkBytes uvarint | entryCount uvarint )
//
// The address delta base resets to zero at every chunk boundary (each
// chunk's first delta is the absolute address), which is exactly what
// makes chunks independently decodable; the cost is one wide varint per
// chunk. The footer is read-from-end: fixed-width trailer fields give the
// index length and checksum without any forward scan.

const (
	chunkMagic     = "HNTR2"
	chunkTailMagic = "HNXI"
	chunkVersion   = 1

	// DefaultChunkEntries is the chunk granularity used when a writer is
	// configured with zero: large enough to amortize the per-chunk CRC and
	// absolute-address entry, small enough that a random Seek decodes only
	// a few tens of KB.
	DefaultChunkEntries = 4096

	// chunkMaxEntries bounds the per-chunk entry count accepted from a
	// footer index, so a corrupt index cannot demand an absurd allocation.
	chunkMaxEntries = 1 << 20

	chunkHeaderLen  = 8  // magic + version + reserved
	chunkTrailerLen = 12 // index len + index crc + tail magic
)

// ChunkWriter streams entries into an HNTR2 chunked trace. Close must be
// called to flush the final partial chunk and write the footer index;
// without it the file has no index and will not open.
type ChunkWriter struct {
	w       io.Writer
	per     int
	body    []byte // current chunk body (count patched in at flush)
	n       int    // entries in current chunk
	base    int64  // delta base, reset per chunk
	index   []chunkInfo
	count   int64
	wrote   int64 // bytes written so far (chunk offsets derive from this)
	closed  bool
	sticky  error
	scratch [binary.MaxVarintLen64]byte
}

type chunkInfo struct {
	bytes   int64
	entries int64
}

// NewChunkWriter writes the header and returns a chunk writer.
// entriesPerChunk 0 selects DefaultChunkEntries.
func NewChunkWriter(w io.Writer, entriesPerChunk int) (*ChunkWriter, error) {
	if entriesPerChunk == 0 {
		entriesPerChunk = DefaultChunkEntries
	}
	if entriesPerChunk < 1 || entriesPerChunk > chunkMaxEntries {
		return nil, fmt.Errorf("trace: entries per chunk %d out of range [1,%d]", entriesPerChunk, chunkMaxEntries)
	}
	head := make([]byte, 0, chunkHeaderLen)
	head = append(head, chunkMagic...)
	head = append(head, chunkVersion, 0, 0)
	if _, err := w.Write(head); err != nil {
		return nil, err
	}
	return &ChunkWriter{w: w, per: entriesPerChunk, wrote: chunkHeaderLen}, nil
}

// Write appends one entry.
func (c *ChunkWriter) Write(e Entry) error {
	if c.sticky != nil {
		return c.sticky
	}
	if c.closed {
		return fmt.Errorf("trace: write to closed chunk writer")
	}
	if e.Gap < 0 {
		return fmt.Errorf("trace: negative gap %d", e.Gap)
	}
	gw := uint64(e.Gap) << 1
	if e.Write {
		gw |= 1
	}
	c.body = binary.AppendUvarint(c.body, gw)
	delta := int64(e.Addr) - c.base
	c.body = binary.AppendVarint(c.body, delta)
	c.base = int64(e.Addr)
	c.n++
	c.count++
	if c.n >= c.per {
		return c.flushChunk()
	}
	return nil
}

// WriteBatch appends every entry of es.
func (c *ChunkWriter) WriteBatch(es []Entry) error {
	for _, e := range es {
		if err := c.Write(e); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of entries written.
func (c *ChunkWriter) Count() int64 { return c.count }

func (c *ChunkWriter) flushChunk() error {
	if c.n == 0 {
		return nil
	}
	n := binary.PutUvarint(c.scratch[:], uint64(c.n))
	chunk := make([]byte, 0, n+len(c.body)+4)
	chunk = append(chunk, c.scratch[:n]...)
	chunk = append(chunk, c.body...)
	chunk = binary.LittleEndian.AppendUint32(chunk, crc32.ChecksumIEEE(chunk))
	if _, err := c.w.Write(chunk); err != nil {
		c.sticky = err
		return err
	}
	c.index = append(c.index, chunkInfo{bytes: int64(len(chunk)), entries: int64(c.n)})
	c.wrote += int64(len(chunk))
	c.body = c.body[:0]
	c.n = 0
	c.base = 0
	return nil
}

// Close flushes the final partial chunk and writes the footer index. It
// does not close the underlying writer.
func (c *ChunkWriter) Close() error {
	if c.closed {
		return c.sticky
	}
	if err := c.flushChunk(); err != nil {
		return err
	}
	c.closed = true
	idx := binary.AppendUvarint(nil, uint64(len(c.index)))
	for _, ci := range c.index {
		idx = binary.AppendUvarint(idx, uint64(ci.bytes))
		idx = binary.AppendUvarint(idx, uint64(ci.entries))
	}
	tail := make([]byte, 0, len(idx)+chunkTrailerLen)
	tail = append(tail, idx...)
	tail = binary.LittleEndian.AppendUint32(tail, uint32(len(idx)))
	tail = binary.LittleEndian.AppendUint32(tail, crc32.ChecksumIEEE(idx))
	tail = append(tail, chunkTailMagic...)
	if _, err := c.w.Write(tail); err != nil {
		c.sticky = err
		return err
	}
	return nil
}

// chunkMeta is one index entry resolved to an absolute file position.
type chunkMeta struct {
	off     int64 // byte offset of the chunk in the file
	size    int64 // chunk length in bytes, CRC included
	entries int64
	before  int64 // entries in all preceding chunks
}

// ChunkReader replays an HNTR2 trace from any io.ReaderAt. Like
// FileReader it is a total Reader — after the last entry it returns the
// final entry with an enormous gap (an idle core) — and distinguishes
// clean exhaustion from corruption via Err. Beyond that it is a
// BatchReader (NextBatch decodes straight out of the chunk buffer, zero
// allocations in steady state), a Seeker (SeekTo lands on any entry with
// one chunk decode), and Stateful (SaveState is the 9-byte position).
//
// With prefetch enabled, a background goroutine reads and decodes the
// next chunk while the caller drains the current one (double buffering).
// Prefetch only ever decodes — it has no effect on the entry stream, so
// runs stay deterministic — but it requires the io.ReaderAt to tolerate
// concurrent ReadAt calls (os.File and bytes.Reader both do) and Close
// must be called to stop the goroutine.
type ChunkReader struct {
	ra     io.ReaderAt
	chunks []chunkMeta
	total  int64

	raw []byte  // encoded bytes of the current chunk
	buf []Entry // decoded entries of the current chunk
	ci  int     // index of the decoded chunk; -1 before the first fill
	cur int     // next entry within buf
	pos int64

	last Entry
	done bool
	err  error

	pf *chunkPrefetcher
}

// NewChunkReader parses the header and footer index of an HNTR2 trace.
// The reader accesses ra only through ReadAt, so any number of
// ChunkReaders can share one underlying file.
func NewChunkReader(ra io.ReaderAt, size int64, prefetch bool) (*ChunkReader, error) {
	minLen := int64(chunkHeaderLen + 1 + chunkTrailerLen)
	if size < minLen {
		return nil, fmt.Errorf("trace: chunked trace too short (%d bytes)", size)
	}
	var head [chunkHeaderLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(ra, 0, chunkHeaderLen), head[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:5]) != chunkMagic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:5])
	}
	if head[5] != chunkVersion {
		return nil, fmt.Errorf("trace: unsupported chunked version %d", head[5])
	}
	if head[6] != 0 || head[7] != 0 {
		// Reserved bytes must be zero so every byte of a valid file is
		// covered by some check — magic, version, a CRC, or this.
		return nil, fmt.Errorf("trace: nonzero reserved header bytes")
	}
	var trailer [chunkTrailerLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(ra, size-chunkTrailerLen, chunkTrailerLen), trailer[:]); err != nil {
		return nil, fmt.Errorf("trace: short trailer: %w", err)
	}
	if string(trailer[8:12]) != chunkTailMagic {
		return nil, fmt.Errorf("trace: bad tail magic %q (truncated file?)", trailer[8:12])
	}
	idxLen := int64(binary.LittleEndian.Uint32(trailer[0:4]))
	idxCRC := binary.LittleEndian.Uint32(trailer[4:8])
	idxOff := size - chunkTrailerLen - idxLen
	if idxLen < 1 || idxOff < chunkHeaderLen {
		return nil, fmt.Errorf("trace: index length %d out of range", idxLen)
	}
	idx := make([]byte, idxLen)
	if _, err := io.ReadFull(io.NewSectionReader(ra, idxOff, idxLen), idx); err != nil {
		return nil, fmt.Errorf("trace: short index: %w", err)
	}
	if got := crc32.ChecksumIEEE(idx); got != idxCRC {
		return nil, fmt.Errorf("trace: index checksum mismatch (got %08x want %08x)", got, idxCRC)
	}
	numChunks, n := binary.Uvarint(idx)
	if n <= 0 {
		return nil, fmt.Errorf("trace: corrupt index header")
	}
	p := n
	chunks := make([]chunkMeta, 0, numChunks)
	off, total := int64(chunkHeaderLen), int64(0)
	maxEntries := int64(0)
	for i := uint64(0); i < numChunks; i++ {
		cb, n := binary.Uvarint(idx[p:])
		if n <= 0 {
			return nil, fmt.Errorf("trace: corrupt index at chunk %d", i)
		}
		p += n
		ce, n := binary.Uvarint(idx[p:])
		if n <= 0 {
			return nil, fmt.Errorf("trace: corrupt index at chunk %d", i)
		}
		p += n
		if ce < 1 || ce > chunkMaxEntries || int64(cb) < 5 {
			return nil, fmt.Errorf("trace: implausible chunk %d (%d bytes, %d entries)", i, cb, ce)
		}
		chunks = append(chunks, chunkMeta{off: off, size: int64(cb), entries: int64(ce), before: total})
		off += int64(cb)
		total += int64(ce)
		if int64(ce) > maxEntries {
			maxEntries = int64(ce)
		}
	}
	if p != len(idx) {
		return nil, fmt.Errorf("trace: %d trailing index bytes", len(idx)-p)
	}
	if off != idxOff {
		return nil, fmt.Errorf("trace: chunks end at %d, index starts at %d", off, idxOff)
	}
	c := &ChunkReader{ra: ra, chunks: chunks, total: total, ci: -1}
	if maxEntries > 0 {
		c.buf = make([]Entry, 0, maxEntries)
	}
	if prefetch && len(chunks) > 1 {
		c.pf = newChunkPrefetcher(c, int(maxEntries))
	}
	return c, nil
}

// decodeChunkInto verifies raw's CRC and decodes its entries into
// out[:0], returning the filled slice. out's capacity is reused, so
// steady-state decode allocates nothing.
func decodeChunkInto(raw []byte, wantEntries int64, out []Entry) ([]Entry, error) {
	if len(raw) < 5 {
		return nil, fmt.Errorf("trace: chunk too short (%d bytes)", len(raw))
	}
	body := raw[:len(raw)-4]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(raw[len(raw)-4:]); got != want {
		return nil, fmt.Errorf("trace: chunk checksum mismatch (got %08x want %08x)", got, want)
	}
	count, n := binary.Uvarint(body)
	if n <= 0 || int64(count) != wantEntries {
		return nil, fmt.Errorf("trace: chunk holds %d entries, index says %d", count, wantEntries)
	}
	p := n
	out = out[:0]
	var addr int64
	for i := uint64(0); i < count; i++ {
		// Single-byte fast path: most gaps are small, so the gap/write
		// word is usually one byte. The CRC already vouched for the body,
		// so corruption checks only guard structural drift.
		var gw uint64
		if p < len(body) && body[p] < 0x80 {
			gw = uint64(body[p])
			p++
		} else {
			v, n := binary.Uvarint(body[p:])
			if n <= 0 {
				return nil, fmt.Errorf("trace: corrupt entry %d", i)
			}
			gw = v
			p += n
		}
		var delta int64
		if p < len(body) && body[p] < 0x80 {
			u := uint64(body[p])
			delta = int64(u>>1) ^ -int64(u&1) // inline zigzag decode
			p++
		} else {
			v, n := binary.Varint(body[p:])
			if n <= 0 {
				return nil, fmt.Errorf("trace: corrupt entry %d", i)
			}
			delta = v
			p += n
		}
		addr += delta
		out = append(out, Entry{Gap: int(gw >> 1), Addr: uint64(addr), Write: gw&1 != 0})
	}
	if p != len(body) {
		return nil, fmt.Errorf("trace: %d trailing chunk bytes", len(body)-p)
	}
	return out, nil
}

// loadChunk reads and decodes chunk ci, reusing *rawp and *bufp.
func (c *ChunkReader) loadChunk(ci int, rawp *[]byte, bufp *[]Entry) error {
	m := c.chunks[ci]
	raw := *rawp
	if int64(cap(raw)) < m.size {
		raw = make([]byte, m.size)
	} else {
		raw = raw[:m.size]
	}
	*rawp = raw
	// Direct ReadAt (not a SectionReader) keeps the steady-state decode
	// path allocation-free. ReadAt's contract allows io.EOF alongside a
	// full read when the range ends exactly at the file's end.
	if n, err := c.ra.ReadAt(raw, m.off); err != nil && !(err == io.EOF && n == len(raw)) {
		return fmt.Errorf("trace: chunk %d read: %w", ci, err)
	}
	buf, err := decodeChunkInto(raw, m.entries, *bufp)
	if err != nil {
		return fmt.Errorf("trace: chunk %d: %w", ci, err)
	}
	*bufp = buf
	return nil
}

// fill makes buf hold chunk ci, consuming a prefetched decode when one is
// in flight for exactly that chunk and falling back to a synchronous
// decode otherwise (e.g. right after a Seek).
func (c *ChunkReader) fill(ci int) error {
	if c.pf != nil {
		if res, ok := c.pf.take(ci); ok {
			if res.err != nil {
				return res.err
			}
			c.pf.spareRaw, c.pf.spareBuf = c.raw, c.buf
			c.raw, c.buf = res.raw, res.buf
			c.ci, c.cur = ci, 0
			c.pf.prime(ci + 1)
			return nil
		}
	}
	if err := c.loadChunk(ci, &c.raw, &c.buf); err != nil {
		return err
	}
	c.ci, c.cur = ci, 0
	if c.pf != nil {
		c.pf.prime(ci + 1)
	}
	return nil
}

// settle ends the stream at the current chunk's final entry.
func (c *ChunkReader) settle() {
	c.done = true
	if len(c.buf) > 0 {
		c.last = c.buf[len(c.buf)-1]
	}
}

func (c *ChunkReader) fail(err error) {
	c.err = fmt.Errorf("trace: corrupt trace after %d entries: %w", c.pos, err)
	c.settle()
}

// Next implements Reader with FileReader's total semantics: after the
// last entry (or a corrupt chunk — check Err) it returns the final good
// entry with an enormous gap.
func (c *ChunkReader) Next() Entry {
	if c.cur < len(c.buf) {
		e := c.buf[c.cur]
		c.cur++
		c.pos++
		return e
	}
	if !c.done {
		if ni := c.ci + 1; ni < len(c.chunks) {
			if err := c.fill(ni); err != nil {
				c.fail(err)
			} else {
				return c.Next()
			}
		} else {
			c.settle()
		}
	}
	e := c.last
	e.Gap = 1 << 20
	return e
}

// NextBatch copies up to len(out) entries straight out of the decoded
// chunk buffer. Unlike Next it does not pad with idle entries: it returns
// how many real entries were produced, 0 at end of trace (or on a corrupt
// chunk — check Err).
func (c *ChunkReader) NextBatch(out []Entry) int {
	n := 0
	for n < len(out) {
		if c.cur < len(c.buf) {
			k := copy(out[n:], c.buf[c.cur:])
			c.cur += k
			c.pos += int64(k)
			n += k
			continue
		}
		if c.done {
			break
		}
		ni := c.ci + 1
		if ni >= len(c.chunks) {
			c.settle()
			break
		}
		if err := c.fill(ni); err != nil {
			c.fail(err)
			break
		}
	}
	return n
}

// Pos returns the number of entries consumed so far.
func (c *ChunkReader) Pos() int64 { return c.pos }

// Len returns the total number of entries in the trace.
func (c *ChunkReader) Len() int64 { return c.total }

// Exhausted reports whether the trace has been fully replayed.
func (c *ChunkReader) Exhausted() bool { return c.done }

// Err reports whether replay hit a corrupt chunk. Clean exhaustion leaves
// it nil.
func (c *ChunkReader) Err() error { return c.err }

// SeekTo repositions the reader so the next entry returned is entry n
// (zero-based); SeekTo(Len()) positions at end of trace. One index lookup +
// at most one chunk decode, never a replay.
func (c *ChunkReader) SeekTo(n int64) error {
	if c.err != nil {
		return c.err
	}
	if n < 0 || n > c.total {
		return fmt.Errorf("trace: seek %d out of range [0,%d]", n, c.total)
	}
	c.done = false
	ci := len(c.chunks) - 1
	if n < c.total {
		ci = sort.Search(len(c.chunks), func(i int) bool {
			return c.chunks[i].before+c.chunks[i].entries > n
		})
	}
	if ci >= 0 && ci != c.ci {
		if err := c.fill(ci); err != nil {
			c.fail(err)
			return c.err
		}
	}
	if ci >= 0 {
		c.cur = int(n - c.chunks[ci].before)
	}
	c.pos = n
	return nil
}

// chunkStateVersion tags ChunkReader state snapshots.
const chunkStateVersion = 1

// SaveState captures the reader position (Stateful). For a chunked file
// the position is just the entry index — 9 bytes.
func (c *ChunkReader) SaveState() []byte {
	dst := make([]byte, 0, 9)
	dst = append(dst, chunkStateVersion)
	return binary.LittleEndian.AppendUint64(dst, uint64(c.pos))
}

// RestoreState repositions to a SaveState snapshot via Seek.
func (c *ChunkReader) RestoreState(state []byte) error {
	if len(state) != 9 || state[0] != chunkStateVersion {
		return fmt.Errorf("trace: bad chunk reader state (len %d)", len(state))
	}
	return c.SeekTo(int64(binary.LittleEndian.Uint64(state[1:9])))
}

// Close stops the prefetch goroutine, if any. It does not close the
// underlying ReaderAt. Safe to call more than once.
func (c *ChunkReader) Close() error {
	if c.pf != nil {
		c.pf.stop()
		c.pf = nil
	}
	return nil
}

// chunkPrefetcher decodes the next chunk on a background goroutine while
// the reader drains the current one. Two raw/decoded buffer pairs rotate
// between the reader and the goroutine, so steady-state prefetch
// allocates nothing. The goroutine only reads (ReadAt) and decodes —
// stream content and order are decided entirely on the caller's side.
type chunkPrefetcher struct {
	req chan chunkJob
	res chan chunkResult

	numChunks  int
	inflight   bool
	inflightCI int
	spareRaw   []byte
	spareBuf   []Entry
}

type chunkJob struct {
	ci  int
	raw []byte
	buf []Entry
}

type chunkResult struct {
	ci  int
	raw []byte
	buf []Entry
	err error
}

func newChunkPrefetcher(c *ChunkReader, maxEntries int) *chunkPrefetcher {
	pf := &chunkPrefetcher{
		req:       make(chan chunkJob),
		res:       make(chan chunkResult),
		numChunks: len(c.chunks),
		spareBuf:  make([]Entry, 0, maxEntries),
	}
	go func() {
		for job := range pf.req {
			err := c.loadChunk(job.ci, &job.raw, &job.buf)
			pf.res <- chunkResult{ci: job.ci, raw: job.raw, buf: job.buf, err: err}
		}
		close(pf.res)
	}()
	return pf
}

// prime requests a background decode of chunk ci if none is in flight
// and ci exists.
func (pf *chunkPrefetcher) prime(ci int) {
	if pf.inflight || ci < 0 || ci >= pf.numChunks {
		return
	}
	pf.req <- chunkJob{ci: ci, raw: pf.spareRaw, buf: pf.spareBuf}
	pf.spareRaw, pf.spareBuf = nil, nil
	pf.inflight, pf.inflightCI = true, ci
}

// take collects the in-flight result if it is for chunk ci. A result for
// any other chunk (stale after a Seek) is drained and its buffers
// reclaimed; the caller then decodes synchronously.
func (pf *chunkPrefetcher) take(ci int) (chunkResult, bool) {
	if !pf.inflight {
		return chunkResult{}, false
	}
	res := <-pf.res
	pf.inflight = false
	if res.ci != ci {
		pf.spareRaw, pf.spareBuf = res.raw, res.buf
		return chunkResult{}, false
	}
	return res, true
}

func (pf *chunkPrefetcher) stop() {
	close(pf.req)
	if pf.inflight {
		<-pf.res
	}
}

// ChunkFile is a ChunkReader that owns its backing file.
type ChunkFile struct {
	*ChunkReader
	f *os.File
}

// OpenChunked opens an HNTR2 trace file for replay.
func OpenChunked(path string, prefetch bool) (*ChunkFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	cr, err := NewChunkReader(f, st.Size(), prefetch)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &ChunkFile{ChunkReader: cr, f: f}, nil
}

// Close stops prefetch and closes the file.
func (cf *ChunkFile) Close() error {
	cf.ChunkReader.Close()
	return cf.f.Close()
}

// RecordChunked captures n entries from any Reader into an HNTR2 stream,
// using the bulk path when src supports it. entriesPerChunk 0 selects the
// default.
func RecordChunked(w io.Writer, src Reader, n int, entriesPerChunk int) error {
	cw, err := NewChunkWriter(w, entriesPerChunk)
	if err != nil {
		return err
	}
	if br, ok := src.(BatchReader); ok {
		batch := make([]Entry, 1024)
		for n > 0 {
			want := len(batch)
			if n < want {
				want = n
			}
			got := br.NextBatch(batch[:want])
			if got == 0 {
				break
			}
			if err := cw.WriteBatch(batch[:got]); err != nil {
				return err
			}
			n -= got
		}
	} else {
		for i := 0; i < n; i++ {
			if err := cw.Write(src.Next()); err != nil {
				return err
			}
		}
	}
	return cw.Close()
}
