package trace

// Trace morphing: derive new workloads from existing trace streams
// instead of writing new generators. Two layers compose:
//
//   - MorphProfile scales a synthetic Profile's knobs (footprint,
//     sharing, burstiness, memory intensity) before generation — cheap,
//     and the result is just another Profile.
//   - Morph wraps ANY Reader — synthetic generator or recorded file —
//     and rewrites the entry stream itself: redirecting a fraction of
//     accesses onto a tiny hot line set homed at one tile (directory
//     hotspot), or remapping addresses so they all select one memory
//     controller (MC incast), the two adversarial classes a
//     heterogeneous placement is supposed to absorb.
//
// The named adversarial workloads built from these (AdversarialWorkloads)
// resolve through NewWorkloadReader exactly like Table 2 profiles, so
// every call site that accepts a benchmark name — cmd/experiments,
// nocserved requests, the DSE — accepts "hotspot" or "mc-incast" too.

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// splitmix64 is the morph layer's own RNG: one uint64 of state, so a
// Morph's exact position is trivially serializable (unlike math/rand,
// whose 607-word register needs the lfgSource treatment). Constants are
// the standard SplitMix64 ones (Steele et al., "Fast splittable
// pseudorandom number generators").
type splitmix64 struct{ s uint64 }

func (r *splitmix64) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0,1).
func (r *splitmix64) float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ProfileMorph scales a Profile's knobs. Zero-valued fields leave the
// corresponding knob unchanged (a scale of exactly 1 is also a no-op).
type ProfileMorph struct {
	// FootprintScale multiplies FootprintLines and SharedLines.
	FootprintScale float64
	// SharedScale multiplies SharedFrac (clamped to [0,1]).
	SharedScale float64
	// BurstScale multiplies Burst (clamped to [0,1]).
	BurstScale float64
	// GapScale multiplies MeanGap: <1 is more memory-bound.
	GapScale float64
}

// MorphProfile applies m to p. The name is left alone; callers that
// register the result as a distinct workload rename it themselves.
func MorphProfile(p Profile, m ProfileMorph) Profile {
	scaleInt := func(v int, s float64) int {
		if s == 0 {
			return v
		}
		n := int(float64(v)*s + 0.5)
		if n < 1 && v > 0 {
			n = 1
		}
		return n
	}
	clamp01 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	p.FootprintLines = scaleInt(p.FootprintLines, m.FootprintScale)
	p.SharedLines = scaleInt(p.SharedLines, m.FootprintScale)
	if m.SharedScale != 0 {
		p.SharedFrac = clamp01(p.SharedFrac * m.SharedScale)
	}
	if m.BurstScale != 0 {
		p.Burst = clamp01(p.Burst * m.BurstScale)
	}
	if m.GapScale != 0 {
		p.MeanGap *= m.GapScale
	}
	return p
}

// MorphSpec is the stream-level rewrite applied by Morph. Fractions are
// per entry; an entry hits at most one rewrite class (hotspot is drawn
// before incast from a single uniform draw, so the classes partition the
// probability space deterministically).
type MorphSpec struct {
	// HotspotFrac redirects this fraction of accesses onto a hot set of
	// HotspotLines cache lines, all of which are homed at tile HotTile
	// (line % tiles == HotTile) — a directory/network hotspot.
	HotspotFrac  float64
	HotspotLines int
	HotTile      int

	// IncastFrac remaps this fraction of accesses so the memory
	// controller selector (line/tiles) % IncastMCs lands on IncastMC,
	// while the home tile (line % tiles) and the high address bits are
	// preserved — memory traffic converges on one MC.
	IncastFrac float64
	IncastMC   int
	IncastMCs  int

	// GapScale multiplies each entry's gap (deterministic rounding);
	// <1 compresses compute, raising injection pressure. 0 = unchanged.
	GapScale float64
}

// isZero reports a no-op spec.
func (m MorphSpec) isZero() bool {
	return m.HotspotFrac == 0 && m.IncastFrac == 0 && (m.GapScale == 0 || m.GapScale == 1)
}

// Morph rewrites the entries of an underlying Reader per a MorphSpec.
// It passes BatchReader through (morphing in place on the batch) and is
// Stateful whenever the source is: its own state is the single splitmix64
// word, concatenated with the source's snapshot.
type Morph struct {
	src       Reader
	spec      MorphSpec
	rng       splitmix64
	tiles     uint64
	lineBytes uint64
	pos       int64
}

// NewMorph wraps src. tiles is the home-tile modulus of the target CMP
// (the line→tile mapping is line % tiles); lineBytes must match the
// source's address granularity; seed fixes the rewrite decisions.
func NewMorph(src Reader, spec MorphSpec, tiles, lineBytes int, seed uint64) *Morph {
	return &Morph{
		src:       src,
		spec:      spec,
		rng:       splitmix64{s: seed},
		tiles:     uint64(tiles),
		lineBytes: uint64(lineBytes),
	}
}

// morph rewrites one entry, consuming exactly one uniform draw for the
// class decision (plus one more only on the hotspot branch).
func (m *Morph) morph(e Entry) Entry {
	if s := m.spec.GapScale; s != 0 && s != 1 {
		e.Gap = int(float64(e.Gap)*s + 0.5)
	}
	u := m.rng.float64()
	switch {
	case u < m.spec.HotspotFrac:
		k := m.rng.Uint64() % uint64(m.spec.HotspotLines)
		line := k*m.tiles + uint64(m.spec.HotTile)
		e.Addr = line * m.lineBytes
	case u < m.spec.HotspotFrac+m.spec.IncastFrac:
		nm := m.tiles * uint64(m.spec.IncastMCs)
		line := e.Addr / m.lineBytes
		line = (line/nm)*nm + uint64(m.spec.IncastMC)*m.tiles + line%m.tiles
		e.Addr = line * m.lineBytes
	}
	return e
}

// Next implements Reader.
func (m *Morph) Next() Entry {
	m.pos++
	return m.morph(m.src.Next())
}

// NextBatch implements BatchReader: the source fills the batch (bulk
// path when it supports one), then the rewrite runs in place.
func (m *Morph) NextBatch(out []Entry) int {
	var n int
	if br, ok := m.src.(BatchReader); ok {
		n = br.NextBatch(out)
	} else {
		for i := range out {
			out[i] = m.src.Next()
		}
		n = len(out)
	}
	for i := 0; i < n; i++ {
		out[i] = m.morph(out[i])
	}
	m.pos += int64(n)
	return n
}

// Pos returns the number of entries produced so far.
func (m *Morph) Pos() int64 { return m.pos }

// morphStateVersion tags Morph state snapshots.
const morphStateVersion = 1

// SaveState captures the morph RNG word plus the source's snapshot.
// Returns nil — "state not supported, replay instead" — when the source
// is not Stateful, so wrapping never silently breaks O(1) restore
// detection (see cmp.WarmSnapshot).
func (m *Morph) SaveState() []byte {
	st, ok := m.src.(Stateful)
	if !ok {
		return nil
	}
	dst := make([]byte, 0, 1+8+8)
	dst = append(dst, morphStateVersion)
	dst = appendU64(dst, m.rng.s)
	dst = appendU64(dst, uint64(m.pos))
	return append(dst, st.SaveState()...)
}

// RestoreState repositions the morph and its source.
func (m *Morph) RestoreState(state []byte) error {
	st, ok := m.src.(Stateful)
	if !ok {
		return fmt.Errorf("trace: morph source is not stateful")
	}
	if len(state) < 1+8+8 || state[0] != morphStateVersion {
		return fmt.Errorf("trace: bad morph state (len %d)", len(state))
	}
	if err := st.RestoreState(state[17:]); err != nil {
		return err
	}
	m.rng.s = readU64(state[1:9])
	m.pos = int64(readU64(state[9:17]))
	return nil
}

func appendU64(dst []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(v>>(8*i)))
	}
	return dst
}

func readU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Workload names an adversarial trace class: a base profile, optional
// profile-knob scaling, and an optional stream rewrite.
type Workload struct {
	Name string
	Desc string
	// Base is the Table 2 profile the workload morphs.
	Base   string
	PMorph ProfileMorph
	Spec   MorphSpec
	// hotTileCenter marks specs whose HotTile should be resolved to the
	// mesh-center tile at construction time (it depends on the CMP size).
	hotTileCenter bool
}

// AdversarialWorkloads returns the synthesized stress workloads. The
// incast spec assumes the default 4-controller (corner) memory placement;
// under other placements it still concentrates on mcTiles[0], only less
// sharply.
func AdversarialWorkloads() []Workload {
	return []Workload{
		{
			Name: "hotspot", Base: "TPC-C",
			Desc:          "TPC-C with 40% of accesses redirected to 16 lines homed at the mesh center (directory hotspot)",
			Spec:          MorphSpec{HotspotFrac: 0.40, HotspotLines: 16},
			hotTileCenter: true,
		},
		{
			Name: "mc-incast", Base: "SPECjbb",
			Desc: "SPECjbb with 75% of accesses remapped onto memory controller 0 (MC incast)",
			Spec: MorphSpec{IncastFrac: 0.75, IncastMC: 0, IncastMCs: 4},
		},
		{
			Name: "shared-storm", Base: "canneal",
			Desc:   "canneal with doubled sharing and 1.6x burstiness (coherence storm)",
			PMorph: ProfileMorph{SharedScale: 2.0, BurstScale: 1.6},
		},
		{
			Name: "thrash", Base: "canneal",
			Desc:   "canneal with an 8x footprint at half the gap (capacity thrash, memory-bound)",
			PMorph: ProfileMorph{FootprintScale: 8, GapScale: 0.5},
		},
	}
}

// AdversarialNames lists the adversarial workload names in registry order.
func AdversarialNames() []string {
	ws := AdversarialWorkloads()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// WorkloadByName finds an adversarial workload.
func WorkloadByName(name string) (Workload, bool) {
	for _, w := range AdversarialWorkloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// NewWorkloadReader resolves a workload name — a Table 2 profile or an
// adversarial class — to one core's trace reader for a tiles-core CMP.
// Like the plain generators, the stream depends only on (name, core,
// lineBytes, tiles), never on layout or memory placement, so warm-state
// sharing across layouts stays sound.
func NewWorkloadReader(name string, core, lineBytes, tiles int) (Reader, error) {
	w, ok := WorkloadByName(name)
	if !ok {
		p, err := ProfileByName(name)
		if err != nil {
			return nil, fmt.Errorf("trace: unknown workload %q (profiles: %s; adversarial: %s)",
				name, strings.Join(Names(), ", "), strings.Join(AdversarialNames(), ", "))
		}
		return NewGenerator(p, core, lineBytes), nil
	}
	p, err := ProfileByName(w.Base)
	if err != nil {
		return nil, err
	}
	p = MorphProfile(p, w.PMorph)
	// The workload name seeds the generator, so each adversarial class
	// has its own stream even when two share a base profile.
	p.Name = w.Name
	g := NewGenerator(p, core, lineBytes)
	if w.Spec.isZero() {
		return g, nil
	}
	spec := w.Spec
	if w.hotTileCenter {
		spec.HotTile = tiles / 2
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "morph/%s/%d", w.Name, core)
	return NewMorph(g, spec, tiles, lineBytes, h.Sum64()), nil
}

// WorkloadTraces builds the per-core readers for a whole CMP.
func WorkloadTraces(name string, tiles, lineBytes int) ([]Reader, error) {
	out := make([]Reader, tiles)
	for i := range out {
		r, err := NewWorkloadReader(name, i, lineBytes, tiles)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
