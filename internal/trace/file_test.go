package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	entries := []Entry{
		{Gap: 0, Addr: 0x1000, Write: false},
		{Gap: 7, Addr: 0x1080, Write: true},
		{Gap: 3, Addr: 0x40, Write: false}, // backwards delta
		{Gap: 1 << 18, Addr: 1 << 44, Write: true},
	}
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(entries)) {
		t.Errorf("count %d", w.Count())
	}
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range entries {
		if got := r.Next(); got != want {
			t.Fatalf("entry %d: %+v, want %+v", i, got, want)
		}
	}
	if r.Exhausted() {
		t.Error("exhausted before reading past the end")
	}
	// Past EOF: idle entries at the final address.
	e := r.Next()
	if !r.Exhausted() || e.Gap != 1<<20 || e.Addr != entries[len(entries)-1].Addr {
		t.Errorf("post-EOF entry %+v", e)
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := NewFileReader(bytes.NewReader([]byte("HNTR\x09\x00\x00\x00"))); err == nil {
		t.Error("future version accepted")
	}
	if _, err := NewFileReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRecordSyntheticAndReplay(t *testing.T) {
	p, err := ProfileByName("SPECjbb")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, NewGenerator(p, 3, 128), 5000); err != nil {
		t.Fatal(err)
	}
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The replay must be identical to a fresh generator.
	g := NewGenerator(p, 3, 128)
	for i := 0; i < 5000; i++ {
		if got, want := r.Next(), g.Next(); got != want {
			t.Fatalf("entry %d: %+v, want %+v", i, got, want)
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(gaps []uint16, deltas []int32, writes []bool) bool {
		n := len(gaps)
		if len(deltas) < n {
			n = len(deltas)
		}
		if len(writes) < n {
			n = len(writes)
		}
		if n == 0 {
			return true
		}
		addr := uint64(1 << 30)
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			addr = uint64(int64(addr) + int64(deltas[i]))
			entries[i] = Entry{Gap: int(gaps[i]), Addr: addr, Write: writes[i]}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, e := range entries {
			if w.Write(e) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewFileReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range entries {
			if r.Next() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
