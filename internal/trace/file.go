package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// File format: real trace files (the paper used Simics-collected memory
// traces with "load/stores and the number of non-memory instructions
// between them" — exactly our Entry) can be recorded and replayed through
// the same Reader interface the synthetic generators implement, so a user
// with access to real traces can drop them in without touching the
// simulator.
//
// The binary format is:
//
//	magic "HNTR" | version u8 | reserved [3]byte
//	entries: gap uvarint | addrDelta zigzag-uvarint | flags u8 (bit0 = write)
//
// Addresses are delta-encoded against the previous entry's address, which
// compresses streaming workloads well.

const (
	fileMagic   = "HNTR"
	fileVersion = 1
)

// Writer streams entries into a trace file.
type Writer struct {
	w        *bufio.Writer
	lastAddr uint64
	count    int64
}

// NewWriter writes the header and returns a trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(fileVersion); err != nil {
		return nil, err
	}
	if _, err := bw.Write([]byte{0, 0, 0}); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one entry.
func (t *Writer) Write(e Entry) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(e.Gap))
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	delta := int64(e.Addr) - int64(t.lastAddr)
	n = binary.PutVarint(buf[:], delta)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	var flags byte
	if e.Write {
		flags |= 1
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	t.lastAddr = e.Addr
	t.count++
	return nil
}

// Count returns the number of entries written.
func (t *Writer) Count() int64 { return t.count }

// Flush drains the buffer; call it before closing the underlying file.
func (t *Writer) Flush() error { return t.w.Flush() }

// FileReader replays a recorded trace. When the file ends it keeps
// returning the final entry with an enormous gap, mimicking a finished
// program (an effectively idle core). A clean end-of-file (exhaustion at
// an entry boundary) and a corrupt tail (truncation mid-entry, varint
// overflow, read error) both end the stream this way — the Reader
// interface is total — but only the former leaves Err() nil; callers that
// care about integrity (tracetool info, tests) must check Err after
// replay.
type FileReader struct {
	r        *bufio.Reader
	lastAddr uint64
	last     Entry
	done     bool
	err      error
	count    int64
}

// NewFileReader parses the header and returns a replaying reader.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	if err := checkHeader(br); err != nil {
		return nil, err
	}
	return &FileReader{r: br}, nil
}

func checkHeader(br *bufio.Reader) error {
	head := make([]byte, 8)
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:4]) != fileMagic {
		return fmt.Errorf("trace: bad magic %q", head[:4])
	}
	if head[4] != fileVersion {
		return fmt.Errorf("trace: unsupported version %d", head[4])
	}
	return nil
}

// Next implements Reader. After EOF it returns the last entry with an
// enormous gap (an effectively idle core), keeping the interface total.
func (f *FileReader) Next() Entry {
	if f.done {
		e := f.last
		e.Gap = 1 << 20
		return e
	}
	gap, err := binary.ReadUvarint(f.r)
	if err != nil {
		f.finish(err, err == io.EOF)
		return f.Next()
	}
	delta, err := binary.ReadVarint(f.r)
	if err != nil {
		f.finish(err, false)
		return f.Next()
	}
	flags, err := f.r.ReadByte()
	if err != nil {
		f.finish(err, false)
		return f.Next()
	}
	addr := uint64(int64(f.lastAddr) + delta)
	f.lastAddr = addr
	f.last = Entry{Gap: int(gap), Addr: addr, Write: flags&1 != 0}
	f.count++
	return f.last
}

// finish ends the stream. An io.EOF on the first byte of an entry (clean
// reports it as a boundary) is normal exhaustion; anything else — EOF
// mid-entry, a varint overflow, an underlying read failure — is a corrupt
// tail, recorded for Err. (binary.ReadUvarint already converts an EOF
// inside a varint into io.ErrUnexpectedEOF; the boundary flag covers the
// fields after the first.)
func (f *FileReader) finish(err error, cleanBoundary bool) {
	f.done = true
	if cleanBoundary {
		return
	}
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	f.err = fmt.Errorf("trace: corrupt trace after %d entries: %w", f.count, err)
}

// Err reports whether replay ended in a corrupt tail rather than a clean
// end-of-file. It is nil while entries remain and after clean exhaustion.
func (f *FileReader) Err() error { return f.err }

// Count returns the number of entries decoded so far.
func (f *FileReader) Count() int64 { return f.count }

// Exhausted reports whether the file has been fully replayed.
func (f *FileReader) Exhausted() bool { return f.done }

// Record captures n entries from any Reader into w — useful both to
// snapshot a synthetic workload for external analysis and to convert other
// trace formats by adapting them to Reader first.
func Record(w io.Writer, src Reader, n int) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(src.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}
