package trace

// lfgSource is a snapshot-able reimplementation of the additive
// lagged-Fibonacci generator behind math/rand.NewSource (Mitchell & Reeds:
// x[n] = x[n-273] + x[n-607], seeded by a Lehmer LCG chain XORed with the
// precomputed lfgCooked register — see lfgcooked.go). It produces streams
// bit-identical to rand.NewSource for every seed, which is what lets the
// trace generators swap it in without perturbing a single golden
// fingerprint (TestLFGMatchesMathRand pins this), while adding the one
// capability math/rand withholds: the full register can be saved and
// restored, so a generator's position is O(1) serializable state instead
// of a replay-only RNG stream. That direct state restore is what turns
// cmp warm-checkpoint restore from an O(warmup) Next() replay into a
// fixed-size copy (see cmp.RestoreWarmSnapshot).
//
// lfgSource implements both rand.Source and rand.Source64, exactly like
// the stdlib's rngSource, so rand.Rand drives it through the same Uint64
// path and every derived draw (Float64, Intn, ...) matches.

import "encoding/binary"

const (
	lfgLen  = 607
	lfgTap  = 273
	lfgMask = 1<<63 - 1

	lfgInt32Max = 1<<31 - 1
)

// lfgSource is the feedback register plus its two cursors.
type lfgSource struct {
	tap  int
	feed int
	vec  [lfgLen]int64
}

// newLFG returns a seeded source, equivalent to rand.NewSource(seed).
func newLFG(seed int64) *lfgSource {
	s := &lfgSource{}
	s.Seed(seed)
	return s
}

// lfgSeedrand advances the Lehmer chain x[n+1] = 48271 * x[n] mod (2^31-1)
// used only during seeding.
func lfgSeedrand(x int32) int32 {
	const (
		a = 48271
		q = 44488
		r = 3399
	)
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += lfgInt32Max
	}
	return x
}

// Seed initializes the register deterministically from seed, reproducing
// rngSource.Seed exactly.
func (s *lfgSource) Seed(seed int64) {
	s.tap = 0
	s.feed = lfgLen - lfgTap
	seed %= lfgInt32Max
	if seed < 0 {
		seed += lfgInt32Max
	}
	if seed == 0 {
		seed = 89482311
	}
	x := int32(seed)
	for i := -20; i < lfgLen; i++ {
		x = lfgSeedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = lfgSeedrand(x)
			u ^= int64(x) << 20
			x = lfgSeedrand(x)
			u ^= int64(x)
			u ^= lfgCooked[i]
			s.vec[i] = u
		}
	}
}

// Uint64 returns the next raw 64-bit word (rand.Source64).
func (s *lfgSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += lfgLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lfgLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns the masked 63-bit value (rand.Source).
func (s *lfgSource) Int63() int64 {
	return int64(s.Uint64() & lfgMask)
}

// lfgStateLen is the encoded size of a register snapshot: two cursor
// bytes' worth of varint would be variable, so everything is fixed-width
// little-endian for a predictable, trivially validated layout.
const lfgStateLen = 2*2 + lfgLen*8

// saveTo appends the full register state (cursors + vector) to dst.
func (s *lfgSource) saveTo(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(s.tap))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(s.feed))
	for _, v := range s.vec {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// loadFrom restores a register snapshot written by saveTo, returning the
// remaining bytes, or false if the buffer is short or the cursors are out
// of range.
func (s *lfgSource) loadFrom(b []byte) ([]byte, bool) {
	if len(b) < lfgStateLen {
		return nil, false
	}
	tap := int(binary.LittleEndian.Uint16(b[0:2]))
	feed := int(binary.LittleEndian.Uint16(b[2:4]))
	if tap >= lfgLen || feed >= lfgLen {
		return nil, false
	}
	s.tap, s.feed = tap, feed
	for i := 0; i < lfgLen; i++ {
		s.vec[i] = int64(binary.LittleEndian.Uint64(b[4+i*8:]))
	}
	return b[lfgStateLen:], true
}
