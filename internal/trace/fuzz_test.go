package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFileRoundTrip drives the v1 Writer→FileReader pair with arbitrary
// entry material — huge negative address deltas, zero-gap bursts,
// pathological gap values — and checks the replay is exact and ends in a
// clean (Err-free) EOF. The byte stream the fuzzer mutates is interpreted
// as a sequence of (gap, delta, write) triples.
func FuzzFileRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xff}, 64))         // max gaps, huge negative deltas
	f.Add(bytes.Repeat([]byte{0x00, 0x80, 1}, 9)) // gap=0 bursts
	f.Fuzz(func(t *testing.T, raw []byte) {
		const rec = 18 // 8 gap bytes + 8 delta bytes + 1 write byte + 1 spare
		n := len(raw) / rec
		if n > 4096 {
			n = 4096
		}
		entries := make([]Entry, n)
		addr := uint64(1 << 45)
		for i := 0; i < n; i++ {
			r := raw[i*rec:]
			gap := int(uint32(r[0]) | uint32(r[1])<<8 | uint32(r[2])<<16) // keep Gap sane but allow 2^24-1
			delta := int64(uint64(r[8]) | uint64(r[9])<<8 | uint64(r[10])<<16 | uint64(r[11])<<24 |
				uint64(r[12])<<32 | uint64(r[13])<<40 | uint64(r[14])<<48 | uint64(r[15])<<56)
			addr = uint64(int64(addr) + delta)
			entries[i] = Entry{Gap: gap, Addr: addr, Write: r[16]&1 != 0}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewFileReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range entries {
			if got := r.Next(); got != want {
				t.Fatalf("entry %d: %+v != %+v", i, got, want)
			}
		}
		if e := r.Next(); e.Gap != 1<<20 {
			t.Fatalf("post-EOF entry %+v", e)
		}
		if r.Err() != nil {
			t.Fatalf("clean round trip reported corruption: %v", r.Err())
		}
	})
}

// FuzzChunkOpen throws arbitrary bytes at the HNTR2 parser: it must
// reject or replay them without panicking, and any file it does accept
// must replay within its own advertised length.
func FuzzChunkOpen(f *testing.F) {
	var seed bytes.Buffer
	_ = RecordChunked(&seed, NewURGenerator(0, 64), 300, 32)
	f.Add(seed.Bytes())
	f.Add([]byte(chunkMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := NewChunkReader(bytes.NewReader(raw), int64(len(raw)), false)
		if err != nil {
			return
		}
		limit := r.Len()
		if limit > 1<<16 {
			limit = 1 << 16
		}
		for i := int64(0); i < limit; i++ {
			r.Next()
			if r.Err() != nil {
				return
			}
		}
	})
}

// TestFileTruncationEveryPrefix replays every strict prefix of a valid
// v1 trace. Prefixes that cut mid-entry must surface through Err — the
// bug this pins down is the old behavior of treating any read failure as
// a clean EOF — while entry-boundary prefixes must replay their entries
// and end Err-free.
func TestFileTruncationEveryPrefix(t *testing.T) {
	var buf bytes.Buffer
	entries := []Entry{
		{Gap: 0, Addr: 1 << 44, Write: true}, // multi-byte delta
		{Gap: 300, Addr: 0x80, Write: false}, // multi-byte gap, big negative delta
		{Gap: 1, Addr: 0x81, Write: true},
		{Gap: 0, Addr: 1 << 50, Write: false},
	}
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := map[int]int{8: 0} // byte offset -> entries decodable at it
	for i, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries[buf.Len()] = i + 1
	}
	data := buf.Bytes()
	for n := 8; n <= len(data); n++ {
		r, err := NewFileReader(bytes.NewReader(data[:n]))
		if err != nil {
			t.Fatalf("prefix %d: open: %v", n, err)
		}
		decoded := 0
		for {
			r.Next()
			if r.Exhausted() {
				break
			}
			decoded++
		}
		wantEntries, clean := boundaries[n]
		if clean {
			if r.Err() != nil {
				t.Fatalf("prefix %d is a clean boundary but Err = %v", n, r.Err())
			}
			if decoded != wantEntries {
				t.Fatalf("prefix %d: decoded %d entries, want %d", n, decoded, wantEntries)
			}
		} else if r.Err() == nil {
			t.Fatalf("prefix %d cuts mid-entry but replay reported clean EOF after %d entries", n, decoded)
		}
	}
	// Header truncation is rejected at open.
	for n := 0; n < 8; n++ {
		if _, err := NewFileReader(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("header prefix %d accepted", n)
		}
	}
}

// TestFileReaderErrOnReadFailure distinguishes an underlying I/O error
// from EOF: it must surface through Err too.
func TestFileReaderErrOnReadFailure(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Entry{Gap: 1, Addr: 64})
	_ = w.Flush()
	r, err := NewFileReader(&flakyReader{data: buf.Bytes(), failAt: 9})
	if err != nil {
		t.Fatal(err)
	}
	for !r.Exhausted() {
		r.Next()
	}
	if r.Err() == nil {
		t.Fatal("read failure reported as clean EOF")
	}
}

// flakyReader serves data but fails with a non-EOF error at offset
// failAt.
type flakyReader struct {
	data   []byte
	off    int
	failAt int
}

func (f *flakyReader) Read(p []byte) (int, error) {
	if f.off >= f.failAt {
		return 0, io.ErrClosedPipe
	}
	n := copy(p, f.data[f.off:f.failAt])
	f.off += n
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}
