package trace

import (
	"fmt"
	"io"
	"os"
)

// File is the common replay surface of the two on-disk trace formats:
// the flat HNTR v1 stream and the chunked, seekable HNTR2. Both are
// total Readers that distinguish clean exhaustion from a corrupt tail
// via Err. Chunked files additionally implement BatchReader, Seeker and
// Stateful; callers that want those paths type-assert.
type File interface {
	Reader
	Exhausted() bool
	Err() error
	Close() error
}

// flatFile adapts FileReader to File by owning the backing *os.File.
type flatFile struct {
	*FileReader
	f *os.File
}

func (h *flatFile) Close() error { return h.f.Close() }

// Open sniffs a trace file's format from its magic and returns a
// replaying reader for it. prefetch enables the background decode
// goroutine and applies only to chunked (HNTR2) traces; flat v1 streams
// ignore it.
func Open(path string, prefetch bool) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, len(chunkMagic))
	if _, err := io.ReadFull(f, head); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head) == chunkMagic {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		cr, err := NewChunkReader(f, st.Size(), prefetch)
		if err != nil {
			f.Close()
			return nil, err
		}
		return &ChunkFile{ChunkReader: cr, f: f}, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	fr, err := NewFileReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &flatFile{FileReader: fr, f: f}, nil
}
