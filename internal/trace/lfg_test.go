package trace

import (
	"math/rand"
	"testing"
)

// TestLFGMatchesMathRand pins the one property everything downstream
// depends on: lfgSource reproduces rand.NewSource bit for bit — raw words
// and every derived draw the generators use (Float64, Intn, Int63). A
// divergence here would silently shift every trace stream and with it
// every golden fingerprint.
func TestLFGMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40, -(1 << 40), 89482311, 7919*63 + 17} {
		ref := rand.New(rand.NewSource(seed))
		got := rand.New(newLFG(seed))
		for i := 0; i < 2000; i++ {
			if r, g := ref.Uint64(), got.Uint64(); r != g {
				t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, g, r)
			}
		}
		for i := 0; i < 2000; i++ {
			if r, g := ref.Float64(), got.Float64(); r != g {
				t.Fatalf("seed %d draw %d: Float64 %g != %g", seed, i, g, r)
			}
			if r, g := ref.Intn(5000), got.Intn(5000); r != g {
				t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, g, r)
			}
			if r, g := ref.Int63(), got.Int63(); r != g {
				t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, r)
			}
		}
	}
}

// TestLFGSaveRestore proves a restored register continues the exact
// stream, from any point, including mid-stream restores into a source
// seeded differently.
func TestLFGSaveRestore(t *testing.T) {
	src := newLFG(12345)
	for i := 0; i < 777; i++ {
		src.Uint64()
	}
	state := src.saveTo(nil)
	if len(state) != lfgStateLen {
		t.Fatalf("state length %d, want %d", len(state), lfgStateLen)
	}
	var want [100]uint64
	for i := range want {
		want[i] = src.Uint64()
	}
	other := newLFG(999) // deliberately different seed; restore must win
	rest, ok := other.loadFrom(state)
	if !ok {
		t.Fatal("loadFrom rejected a valid snapshot")
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	for i := range want {
		if got := other.Uint64(); got != want[i] {
			t.Fatalf("draw %d after restore: %d != %d", i, got, want[i])
		}
	}
	// Corrupt/short states are refused, not misparsed.
	if _, ok := other.loadFrom(state[:len(state)-1]); ok {
		t.Error("short snapshot accepted")
	}
	bad := append([]byte(nil), state...)
	bad[0], bad[1] = 0xff, 0xff // tap out of range
	if _, ok := other.loadFrom(bad); ok {
		t.Error("out-of-range cursor accepted")
	}
}
