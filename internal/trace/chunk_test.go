package trace

import (
	"bytes"
	"testing"
)

// chunkTestTrace records n generator entries with the given chunk
// granularity and returns the encoded file plus the expected entries.
func chunkTestTrace(t *testing.T, n, per int) ([]byte, []Entry) {
	t.Helper()
	p, err := ProfileByName("TPC-C")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RecordChunked(&buf, NewGenerator(p, 3, 128), n, per); err != nil {
		t.Fatal(err)
	}
	want := make([]Entry, n)
	NewGenerator(p, 3, 128).NextBatch(want)
	return buf.Bytes(), want
}

func TestChunkRoundTrip(t *testing.T) {
	// 1000 entries over 64-entry chunks: 15 full chunks + a 40-entry tail.
	data, want := chunkTestTrace(t, 1000, 64)
	r, err := NewChunkReader(bytes.NewReader(data), int64(len(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != int64(len(want)) {
		t.Fatalf("Len %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("entry %d: %+v != %+v", i, got, w)
		}
	}
	if r.Exhausted() {
		t.Fatal("exhausted before the first post-EOF read")
	}
	// Total-Reader semantics: past the end, the final entry repeats with an
	// idle gap, exactly like FileReader, and Err stays nil (clean EOF).
	for i := 0; i < 3; i++ {
		e := r.Next()
		if e.Gap != 1<<20 || e.Addr != want[len(want)-1].Addr {
			t.Fatalf("post-EOF read %d: %+v", i, e)
		}
	}
	if !r.Exhausted() || r.Err() != nil {
		t.Fatalf("exhausted=%v err=%v after clean EOF", r.Exhausted(), r.Err())
	}
	if r.Pos() != int64(len(want)) {
		t.Fatalf("Pos %d after EOF, want %d", r.Pos(), len(want))
	}
}

// TestChunkSeekMatchesSequential pins the Seeker contract: for any n —
// including positions straddling chunk boundaries — SeekTo(n) must leave
// the reader in exactly the state n sequential Next() calls would, both
// seeking forward and backward.
func TestChunkSeekMatchesSequential(t *testing.T) {
	const per = 16
	data, want := chunkTestTrace(t, 100, per) // 6 full chunks + 4-entry tail
	total := int64(len(want))
	open := func() *ChunkReader {
		r, err := NewChunkReader(bytes.NewReader(data), int64(len(data)), false)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	positions := []int64{0, 1, per - 1, per, per + 1, 2*per - 1, 2 * per, 3*per + 7, total - 1, total}
	for _, n := range positions {
		r := open()
		if err := r.SeekTo(n); err != nil {
			t.Fatalf("SeekTo(%d): %v", n, err)
		}
		if r.Pos() != n {
			t.Fatalf("SeekTo(%d): Pos %d", n, r.Pos())
		}
		for i := n; i < total; i++ {
			if got := r.Next(); got != want[i] {
				t.Fatalf("SeekTo(%d) then entry %d: %+v != %+v", n, i, got, want[i])
			}
		}
		// SeekTo(total) must land on EOF with the correct final entry.
		if e := r.Next(); e.Gap != 1<<20 || e.Addr != want[total-1].Addr {
			t.Fatalf("SeekTo(%d) idle entry: %+v", n, e)
		}
	}
	// Backward seeks on one reader: consume everything, rewind to each
	// position, spot-check the next entry.
	r := open()
	for r.NextBatch(make([]Entry, 64)) > 0 {
	}
	for _, n := range positions {
		if n == total {
			continue
		}
		if err := r.SeekTo(n); err != nil {
			t.Fatalf("backward SeekTo(%d): %v", n, err)
		}
		if got := r.Next(); got != want[n] {
			t.Fatalf("backward SeekTo(%d): %+v != %+v", n, got, want[n])
		}
	}
	// Out-of-range seeks are refused without disturbing the stream.
	if err := r.SeekTo(-1); err == nil {
		t.Error("SeekTo(-1) accepted")
	}
	if err := r.SeekTo(total + 1); err == nil {
		t.Error("SeekTo(total+1) accepted")
	}
}

// TestChunkTruncationEveryPrefix feeds every strict prefix of a valid
// file to NewChunkReader. The footer index lives at the end, so every
// truncation must be caught at open time — none may come up readable.
func TestChunkTruncationEveryPrefix(t *testing.T) {
	data, _ := chunkTestTrace(t, 200, 32)
	for n := 0; n < len(data); n++ {
		if _, err := NewChunkReader(bytes.NewReader(data[:n]), int64(n), false); err == nil {
			t.Fatalf("prefix of %d/%d bytes opened cleanly", n, len(data))
		}
	}
}

// TestChunkCorruptionEveryByte flips every byte of a valid file in turn.
// Every flip must be detected — at open (header, index, trailer) or as a
// chunk CRC failure during replay — and a detected chunk failure must
// stop the stream at the last good entry, not emit garbage.
func TestChunkCorruptionEveryByte(t *testing.T) {
	data, want := chunkTestTrace(t, 200, 32)
	for off := 0; off < len(data); off++ {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xff
		r, err := NewChunkReader(bytes.NewReader(bad), int64(len(bad)), false)
		if err != nil {
			continue // caught at open
		}
		clean := true
		for i := range want {
			e := r.Next()
			if r.Err() != nil {
				clean = false
				break
			}
			if e != want[i] {
				t.Fatalf("flip at %d: entry %d silently wrong: %+v != %+v", off, i, e, want[i])
			}
		}
		if clean && r.Err() == nil {
			t.Fatalf("flip at byte %d of %d went undetected", off, len(data))
		}
	}
}

// TestChunkPrefetchEquivalence runs the same trace with and without the
// background prefetch goroutine, interleaving batches and seeks: the
// streams must match entry for entry (prefetch is a pure read-ahead).
func TestChunkPrefetchEquivalence(t *testing.T) {
	data, _ := chunkTestTrace(t, 5000, 256)
	plain, err := NewChunkReader(bytes.NewReader(data), int64(len(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := NewChunkReader(bytes.NewReader(data), int64(len(data)), true)
	if err != nil {
		t.Fatal(err)
	}
	defer pre.Close()
	bufA, bufB := make([]Entry, 100), make([]Entry, 100)
	step := 0
	for {
		na, nb := plain.NextBatch(bufA), pre.NextBatch(bufB)
		if na != nb {
			t.Fatalf("step %d: batch sizes %d != %d", step, na, nb)
		}
		for i := 0; i < na; i++ {
			if bufA[i] != bufB[i] {
				t.Fatalf("step %d entry %d: %+v != %+v", step, i, bufA[i], bufB[i])
			}
		}
		if na == 0 {
			break
		}
		step++
		if step%7 == 3 { // throw seeks at the prefetcher mid-stream
			n := (int64(step) * 131) % plain.Len()
			if err := plain.SeekTo(n); err != nil {
				t.Fatal(err)
			}
			if err := pre.SeekTo(n); err != nil {
				t.Fatal(err)
			}
		}
		if step > 400 {
			t.Fatal("stream did not terminate")
		}
	}
	if plain.Err() != nil || pre.Err() != nil {
		t.Fatalf("errs: %v / %v", plain.Err(), pre.Err())
	}
	// Close is idempotent and harmless on an exhausted reader.
	if err := pre.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pre.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChunkStateful pins the Stateful contract used by warm-checkpoint
// restore: SaveState at an arbitrary position, restore into a fresh
// reader, identical continuation.
func TestChunkStateful(t *testing.T) {
	data, want := chunkTestTrace(t, 300, 32)
	r, err := NewChunkReader(bytes.NewReader(data), int64(len(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 117; i++ {
		r.Next()
	}
	state := r.SaveState()
	fresh, err := NewChunkReader(bytes.NewReader(data), int64(len(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	for i := 117; i < len(want); i++ {
		if got := fresh.Next(); got != want[i] {
			t.Fatalf("entry %d after restore: %+v != %+v", i, got, want[i])
		}
	}
	if err := fresh.RestoreState(state[:5]); err == nil {
		t.Error("short state accepted")
	}
	if err := fresh.RestoreState([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("bad version accepted")
	}
}

// TestChunkNextBatchZeroAlloc pins the zero-allocation steady state of
// the bulk decode path: with batch size == chunk size, every NextBatch
// decodes exactly one chunk into reused buffers.
func TestChunkNextBatchZeroAlloc(t *testing.T) {
	data, _ := chunkTestTrace(t, 8192, 512)
	r, err := NewChunkReader(bytes.NewReader(data), int64(len(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Entry, 512)
	r.NextBatch(out) // warm up: first fill sizes the raw buffer
	if err := r.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if r.Pos() >= r.Len() {
			if err := r.SeekTo(0); err != nil {
				t.Fatal(err)
			}
		}
		if n := r.NextBatch(out); n != len(out) {
			t.Fatalf("short batch %d", n)
		}
	})
	if allocs > 0 {
		t.Fatalf("NextBatch allocates %.1f per call in steady state", allocs)
	}
}

// TestChunkWriterValidation covers the writer's guard rails.
func TestChunkWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewChunkWriter(&buf, -1); err == nil {
		t.Error("negative chunk size accepted")
	}
	if _, err := NewChunkWriter(&buf, chunkMaxEntries+1); err == nil {
		t.Error("oversized chunk accepted")
	}
	w, err := NewChunkWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Entry{Gap: -1}); err == nil {
		t.Error("negative gap accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Entry{}); err == nil {
		t.Error("write after Close accepted")
	}
	// An empty trace (header + empty index) round-trips.
	r, err := NewChunkReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()), false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("empty trace Len %d", r.Len())
	}
	if e := r.Next(); e.Gap != 1<<20 {
		t.Fatalf("empty trace Next: %+v", e)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}
