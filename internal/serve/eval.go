package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"heteronoc/internal/chaos"
	"heteronoc/internal/dse"
	"heteronoc/internal/obs"
	"heteronoc/internal/reqstat"
)

// POST /eval turns a nocserved instance into a design-space-search worker:
// a search process (cmd/dse -server) ships each generation's deduplicated
// candidate batch here instead of probing locally. Batches ride the same
// admission pipeline as /run — bounded per-tenant queues, fair dispatch,
// cancellation to cycle-batch granularity, panic isolation — and every
// probe lands in the server's shared runcache, so concurrent searches (or
// a search resumed on another machine) dedupe against each other's work.

// EvalRequest is the POST /eval payload: one batch of canonical big-router
// placements to score under a fixed probe recipe.
type EvalRequest struct {
	// Tenant identifies the caller for fair scheduling; empty means
	// "default".
	Tenant string `json:"tenant,omitempty"`
	// Cfg is the probe recipe (mesh size, load, packets, workload).
	Cfg dse.EvalConfig `json:"cfg"`
	// Sets are the placements to evaluate, one candidate per set.
	Sets [][]int `json:"sets"`
	// TimeoutSec caps the batch's wall time (0 = server default).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// EvalResponse is the POST /eval success payload. Candidates are
// index-aligned with the request's Sets.
type EvalResponse struct {
	Candidates []dse.Candidate `json:"candidates"`
	Cache      CacheStats      `json:"cache"`
	ElapsedMS  float64         `json:"elapsed_ms"`
	// FromCache is true when the whole batch was answered without running
	// a single simulation — the cross-search dedup case.
	FromCache bool `json:"from_cache"`
}

// maxEvalBatch bounds one request's candidate count; searches send one
// generation at a time, far below this.
const maxEvalBatch = 1 << 16

// handleEval admits, queues and answers one evaluation batch.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, ErrorPayload{Error: "method_not_allowed"})
		return
	}
	var req EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, ErrorPayload{Error: "bad_request", Detail: err.Error()})
		return
	}
	if len(req.Sets) == 0 {
		s.writeError(w, http.StatusBadRequest, ErrorPayload{Error: "bad_request", Detail: "empty candidate batch"})
		return
	}
	if len(req.Sets) > maxEvalBatch {
		s.writeError(w, http.StatusBadRequest, ErrorPayload{
			Error: "bad_request", Detail: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Sets), maxEvalBatch)})
		return
	}
	if req.Cfg.W <= 0 || req.Cfg.H <= 0 {
		s.writeError(w, http.StatusBadRequest, ErrorPayload{
			Error: "bad_request", Detail: fmt.Sprintf("bad mesh dims %dx%d", req.Cfg.W, req.Cfg.H)})
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if s.draining.Load() {
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	}

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	var cancelTimeout context.CancelFunc = func() {}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	defer cancelTimeout()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	col := &reqstat.Collector{}
	ctx = reqstat.WithCollector(ctx, col)
	ctx = chaos.WithContext(ctx, s.cfg.Chaos)
	span := obs.NewSpan("request")
	span.SetAttr("kind", "eval")
	span.SetAttr("tenant", req.Tenant)
	span.SetAttr("batch", fmt.Sprint(len(req.Sets)))
	ctx = obs.ContextWithSpan(ctx, span)

	j := &job{
		tenant: req.Tenant,
		eval:   &req,
		ctx:    ctx,
		cancel: cancel,
		col:    col,
		span:   span,
		qspan:  span.Child("queue"),
		done:   make(chan jobResult, 1),
	}
	s.trackJob(j, true)
	if err := s.sched.enqueue(j); err != nil {
		s.trackJob(j, false)
		switch {
		case errors.Is(err, ErrDraining):
			s.shed(w, http.StatusServiceUnavailable, "draining")
		case errors.Is(err, ErrTenantQueueFull):
			s.shed(w, http.StatusTooManyRequests, "tenant_queue_full")
		default:
			s.shed(w, http.StatusTooManyRequests, "overloaded")
		}
		return
	}
	select {
	case res := <-j.done:
		s.writeResult(w, res)
	case <-r.Context().Done():
		cancel()
		res := <-j.done
		s.writeResult(w, res)
	}
}

// runEvalJob is the worker half of /eval; runJob dispatches here for
// batch jobs (panic isolation and busy accounting live in runJob).
func (s *Server) runEvalJob(j *job) {
	start := time.Now()
	run := j.span.Child("eval")
	cands, err := dse.LocalEvaluator{}.EvaluateBatch(obs.ContextWithSpan(j.ctx, run), j.eval.Cfg, j.eval.Sets)
	run.End()
	if err != nil {
		j.finish(s, "error")
		j.done <- jobResult{err: err}
		return
	}
	resp := &EvalResponse{
		Candidates: cands,
		Cache: CacheStats{
			Hits:       j.col.CacheHits.Load(),
			Misses:     j.col.CacheMisses.Load(),
			Executions: j.col.Executions.Load(),
			Cycles:     j.col.Cycles.Load(),
		},
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	resp.FromCache = resp.Cache.Executions == 0 && resp.Cache.Cycles == 0
	s.mHits.Add(resp.Cache.Hits)
	if resp.FromCache {
		s.mWarm.Inc()
	}
	outcome := "ok"
	if resp.FromCache {
		outcome = "ok_cached"
	}
	j.finish(s, outcome)
	s.lat.record(resp.ElapsedMS)
	j.done <- jobResult{eval: resp}
}

// Eval posts one candidate batch, retrying retryable refusals with the
// same backoff policy as Run.
func (c *Client) Eval(ctx context.Context, req EvalRequest) (*EvalResponse, error) {
	c.fill()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out EvalResponse
	if err := c.retry(ctx, "/eval", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RemoteEvaluator implements dse.Evaluator against a nocserved instance:
// each generation's batch becomes one POST /eval. The server's shared
// runcache (memory tier plus any disk tier) dedupes probes across every
// search using it, so two concurrent searches of overlapping regions each
// pay only for the placements the other has not already scored.
type RemoteEvaluator struct {
	Client *Client
	// Tenant names the search for the server's fair scheduler.
	Tenant string
	// TimeoutSec caps one batch (0 = server default).
	TimeoutSec float64

	// Batches counts completed batch round trips; WarmBatches counts
	// those the server answered without any simulation work.
	Batches     atomic.Int64
	WarmBatches atomic.Int64
}

// EvaluateBatch implements dse.Evaluator.
func (e *RemoteEvaluator) EvaluateBatch(ctx context.Context, cfg dse.EvalConfig, sets [][]int) ([]dse.Candidate, error) {
	resp, err := e.Client.Eval(ctx, EvalRequest{
		Tenant:     e.Tenant,
		Cfg:        cfg,
		Sets:       sets,
		TimeoutSec: e.TimeoutSec,
	})
	if err != nil {
		return nil, err
	}
	if len(resp.Candidates) != len(sets) {
		return nil, fmt.Errorf("serve: eval returned %d candidates for %d sets", len(resp.Candidates), len(sets))
	}
	e.Batches.Add(1)
	if resp.FromCache {
		e.WarmBatches.Add(1)
	}
	return resp.Candidates, nil
}
