package serve

import (
	"sort"
	"sync"
)

// latencyTracker keeps a sliding window of request latencies (ms) for the
// serve_latency_p50_ms / p99_ms gauges. A fixed ring bounds memory; the
// percentiles describe the most recent cap requests.
type latencyTracker struct {
	mu   sync.Mutex
	ring []float64
	next int
	n    int
}

func newLatencyTracker(cap int) *latencyTracker {
	if cap <= 0 {
		cap = 1024
	}
	return &latencyTracker{ring: make([]float64, cap)}
}

func (t *latencyTracker) record(ms float64) {
	t.mu.Lock()
	t.ring[t.next] = ms
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// percentile returns the p-th percentile (0-100) of the window, 0 when
// empty.
func (t *latencyTracker) percentile(p float64) float64 {
	t.mu.Lock()
	vals := make([]float64, t.n)
	if t.n == len(t.ring) {
		copy(vals, t.ring)
	} else {
		copy(vals, t.ring[:t.n])
	}
	t.mu.Unlock()
	return percentile(vals, p)
}

// percentile sorts vals in place and reads the nearest-rank p-th
// percentile (0 when empty).
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	i := int(p / 100 * float64(len(vals)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(vals) {
		i = len(vals) - 1
	}
	return vals[i]
}
