package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"heteronoc/internal/dse"
	"heteronoc/internal/runcache"
)

func evalTestCfg() dse.EvalConfig {
	return dse.EvalConfig{
		W: 4, H: 4, LinkRedist: true,
		InjectionRate: 0.05, Packets: 200, Seed: 3,
	}
}

// TestEvalEndpointScoresBatch drives the /eval round trip: a batch comes
// back index-aligned with real objectives, and repeating it is answered
// entirely from the server's shared cache.
func TestEvalEndpointScoresBatch(t *testing.T) {
	runcache.Reset()
	defer runcache.Reset()
	srv := New(Config{Workers: 2})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &Client{BaseURL: ts.URL}
	sets := [][]int{{0, 5, 10, 15}, {0, 1, 2, 3}, {0, 3, 12, 15}}
	req := EvalRequest{Cfg: evalTestCfg(), Sets: sets, TimeoutSec: 60}
	resp, err := c.Eval(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != len(sets) {
		t.Fatalf("got %d candidates for %d sets", len(resp.Candidates), len(sets))
	}
	for i, cd := range resp.Candidates {
		if fmt.Sprint(cd.Big) != fmt.Sprint(sets[i]) {
			t.Errorf("candidate %d echoes %v, want %v", i, cd.Big, sets[i])
		}
		if cd.LatencyNS <= 0 || cd.PowerW <= 0 || cd.AreaMM2 <= 0 {
			t.Errorf("candidate %d has degenerate objectives: %+v", i, cd)
		}
	}
	if resp.FromCache {
		t.Fatal("cold batch claims it was served from cache")
	}

	again, err := c.Eval(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.FromCache {
		t.Fatalf("repeated batch not served from cache: %+v", again.Cache)
	}
	for i := range sets {
		if fmt.Sprintf("%+v", again.Candidates[i]) != fmt.Sprintf("%+v", resp.Candidates[i]) {
			t.Errorf("cached candidate %d differs: %+v vs %+v", i, again.Candidates[i], resp.Candidates[i])
		}
	}
}

// TestEvalRejectsBadBatches pins the 400 surface: empty batches and absurd
// mesh dims are refused before touching the queue.
func TestEvalRejectsBadBatches(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, MaxAttempts: 1}

	cases := []EvalRequest{
		{Cfg: evalTestCfg()}, // no sets
		{Cfg: dse.EvalConfig{W: 0, H: 4}, Sets: [][]int{{0}}}, // bad dims
	}
	for i, req := range cases {
		_, err := c.Eval(context.Background(), req)
		var api *APIError
		if !errors.As(err, &api) || api.Code != http.StatusBadRequest {
			t.Errorf("case %d: got %v, want 400", i, err)
		}
	}
}

// TestRemoteSearchMatchesLocal is the fan-out equivalence gate: the same
// seeded search produces the identical Pareto front whether candidates are
// scored in-process or POSTed to a nocserved worker.
func TestRemoteSearchMatchesLocal(t *testing.T) {
	runcache.Reset()
	defer runcache.Reset()
	srv := New(Config{Workers: 2, DefaultTimeout: time.Minute})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := dse.SearchConfig{
		Eval:   evalTestCfg(),
		MinBig: 3, MaxBig: 4,
		PopSize: 6, Generations: 2,
		Seed: 11,
	}
	local, err := dse.Search(base)
	if err != nil {
		t.Fatal(err)
	}

	remoteCfg := base
	re := &RemoteEvaluator{Client: &Client{BaseURL: ts.URL}, Tenant: "search-test"}
	remoteCfg.Evaluator = re
	remote, err := dse.Search(remoteCfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.Batches.Load() == 0 {
		t.Fatal("remote evaluator never posted a batch")
	}
	if fmt.Sprint(local.Front) != fmt.Sprint(remote.Front) {
		t.Fatalf("remote front differs from local:\n%v\nvs\n%v", remote.Front, local.Front)
	}
	// The local run populated the process-wide cache, so every remote
	// batch should have been answered without new simulation work.
	if re.WarmBatches.Load() != re.Batches.Load() {
		t.Fatalf("%d of %d remote batches answered warm; cache sharing broken",
			re.WarmBatches.Load(), re.Batches.Load())
	}
}
