package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"heteronoc/internal/chaos"
	"heteronoc/internal/experiments"
	"heteronoc/internal/obs"
	"heteronoc/internal/reqstat"
	"heteronoc/internal/suspend"
)

// scaleSeq makes every test's Scale.Name process-unique so the global
// runcache cannot leak results between tests (keys include the name).
var scaleSeq atomic.Int64

// testScale returns a small scale preset with a unique name.
func testScale(t *testing.T, measurePackets int) experiments.Scale {
	t.Helper()
	return experiments.Scale{
		Name:             fmt.Sprintf("%s-%d", t.Name(), scaleSeq.Add(1)),
		WarmupPackets:    100,
		MeasurePackets:   measurePackets,
		SweepPoints:      3,
		CMPWarmupEntries: 1000,
		CMPCycles:        1000,
		DSEPackets:       100,
		DSECandidates:    2,
	}
}

// post sends one raw /run request and decodes the response body.
func post(t *testing.T, url string, req Request) (int, http.Header, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// postAsync fires one /run request from a background goroutine, where
// t.Fatalf is off limits; callers assert on server state, not the reply.
func postAsync(url string, req Request) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func decodeResponse(t *testing.T, data []byte) *Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("decode response: %v\n%s", err, data)
	}
	return &r
}

func TestSchedulerFairRoundRobin(t *testing.T) {
	s := newScheduler(4, 64)
	mk := func(tenant string) *job { return &job{tenant: tenant} }
	jobs := map[string]*job{}
	// Tenant A floods its queue before B and C submit one job each.
	for _, name := range []string{"a1", "a2", "a3", "b1", "c1"} {
		j := mk(string(name[0]))
		jobs[name] = j
		if err := s.enqueue(j); err != nil {
			t.Fatalf("enqueue %s: %v", name, err)
		}
	}
	var got []*job
	for i := 0; i < 5; i++ {
		j, ok := s.dequeue()
		if !ok {
			t.Fatal("scheduler drained early")
		}
		got = append(got, j)
	}
	// Round-robin: one job per tenant per pass, so b1 and c1 ride out
	// ahead of a2/a3 despite arriving later.
	want := []*job{jobs["a1"], jobs["b1"], jobs["c1"], jobs["a2"], jobs["a3"]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order[%d]: got tenant %q job %p, want %p", i, got[i].tenant, got[i], want[i])
		}
	}
}

func TestSchedulerBounds(t *testing.T) {
	s := newScheduler(2, 3)
	if err := s.enqueue(&job{tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(&job{tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(&job{tenant: "a"}); err != ErrTenantQueueFull {
		t.Fatalf("third job for one tenant: got %v, want ErrTenantQueueFull", err)
	}
	if err := s.enqueue(&job{tenant: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(&job{tenant: "c"}); err != ErrOverloaded {
		t.Fatalf("job over global cap: got %v, want ErrOverloaded", err)
	}
	s.close()
	if err := s.enqueue(&job{tenant: "d"}); err != ErrDraining {
		t.Fatalf("enqueue after close: got %v, want ErrDraining", err)
	}
	// Already-admitted jobs still drain after close.
	for i := 0; i < 3; i++ {
		if _, ok := s.dequeue(); !ok {
			t.Fatalf("dequeue %d after close: queue should drain", i)
		}
	}
	if _, ok := s.dequeue(); ok {
		t.Fatal("dequeue on drained closed scheduler should report done")
	}
}

func TestRunColdThenWarm(t *testing.T) {
	sc := testScale(t, 20000) // ~200ms cold: enough headroom for the 100x gap
	srv := New(Config{Workers: 2, Scales: map[string]experiments.Scale{"test": sc}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	req := Request{Experiment: "fig1", Scale: "test", Tenant: "t0"}
	code, _, body := post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("cold run: %d %s", code, body)
	}
	cold := decodeResponse(t, body)
	if cold.FromCache || cold.Cache.Executions == 0 || cold.Cache.Cycles == 0 {
		t.Fatalf("cold run should simulate: %+v", cold.Cache)
	}
	if cold.Fingerprint == "" || !strings.Contains(cold.Markdown, "fig1") {
		t.Fatalf("cold run response incomplete: fp=%q", cold.Fingerprint)
	}

	code, _, body = post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("warm run: %d %s", code, body)
	}
	warm := decodeResponse(t, body)
	if !warm.FromCache || warm.Cache.Executions != 0 || warm.Cache.Cycles != 0 {
		t.Fatalf("warm repeat must run zero simulation work: %+v", warm.Cache)
	}
	if warm.Cache.Hits == 0 {
		t.Fatal("warm repeat should charge cache hits")
	}
	if warm.Fingerprint != cold.Fingerprint || warm.Markdown != cold.Markdown {
		t.Fatal("warm result differs from cold result")
	}
	// The acceptance bar: a warm repeat is at least 100x faster than the
	// cold run (it does no simulation at all).
	if warm.ElapsedMS*100 > cold.ElapsedMS {
		t.Fatalf("warm run %.3fms not 100x faster than cold %.1fms", warm.ElapsedMS, cold.ElapsedMS)
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	slow := testScale(t, 4_000_000) // minutes if left alone; cancelled below
	srv := New(Config{
		Workers: 1, QueuePerTenant: 1, MaxQueued: 2,
		DrainGrace: 20 * time.Millisecond, SuspendGrace: 20 * time.Millisecond,
		Scales: map[string]experiments.Scale{"slow": slow},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the single worker.
	started := make(chan struct{})
	go func() {
		close(started)
		post(t, ts.URL, Request{Experiment: "fig1", Scale: "slow", Tenant: "a"})
	}()
	<-started
	waitFor(t, time.Second, func() bool { return srv.busy.Load() == 1 })

	// a's queue slot fills; a second queued job for a is shed per-tenant.
	enq := make(chan struct{})
	go func() {
		close(enq)
		post(t, ts.URL, Request{Experiment: "fig1", Scale: "slow", Tenant: "a"})
	}()
	<-enq
	waitFor(t, time.Second, func() bool { return srv.sched.depth() == 1 })
	code, hdr, body := post(t, ts.URL, Request{Experiment: "fig1", Scale: "slow", Tenant: "a"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("tenant overflow: got %d %s, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	var p ErrorPayload
	json.Unmarshal(body, &p)
	if p.Error != "tenant_queue_full" || p.RetryAfterSec <= 0 {
		t.Fatalf("tenant overflow payload: %+v", p)
	}

	// Other tenants may still queue until the global cap.
	go postAsync(ts.URL, Request{Experiment: "fig1", Scale: "slow", Tenant: "b"})
	waitFor(t, time.Second, func() bool { return srv.sched.depth() == 2 })
	code, _, body = post(t, ts.URL, Request{Experiment: "fig1", Scale: "slow", Tenant: "c"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("global overflow: got %d %s, want 429", code, body)
	}
	json.Unmarshal(body, &p)
	if p.Error != "overloaded" {
		t.Fatalf("global overflow payload: %+v", p)
	}

	// Hard shutdown cancels the in-flight and queued slow runs quickly
	// (no suspend dir: checkpointing is disabled, cancellation is not).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestRequestTimeoutStopsSimulation(t *testing.T) {
	slow := testScale(t, 4_000_000)
	srv := New(Config{Workers: 1, Scales: map[string]experiments.Scale{"slow": slow}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	code, _, body := post(t, ts.URL, Request{Experiment: "fig1", Scale: "slow", TimeoutSec: 0.15})
	if code != http.StatusRequestTimeout {
		t.Fatalf("timed-out run: got %d %s, want 408", code, body)
	}
	var p ErrorPayload
	json.Unmarshal(body, &p)
	if p.Error != "timeout" {
		t.Fatalf("payload: %+v", p)
	}
	// The run must actually have stopped: global simulation progress
	// freezes once the cancelled step loop unwinds.
	time.Sleep(50 * time.Millisecond)
	p0 := reqstat.GlobalProgress()
	time.Sleep(200 * time.Millisecond)
	if p1 := reqstat.GlobalProgress(); p1 != p0 {
		t.Fatalf("simulation still running after timeout: progress %d -> %d", p0, p1)
	}
}

func TestPanicIsolation(t *testing.T) {
	sc := testScale(t, 1200)
	ch := chaos.New(1)
	ch.Set(chaos.PointWorkerPanic, chaos.Spec{Prob: 1, Panic: true, Times: 1})
	srv := New(Config{Workers: 1, Chaos: ch, Scales: map[string]experiments.Scale{"test": sc}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	req := Request{Experiment: "fig1", Scale: "test"}
	code, _, body := post(t, ts.URL, req)
	if code != http.StatusInternalServerError {
		t.Fatalf("crashed run: got %d %s, want 500", code, body)
	}
	var p ErrorPayload
	json.Unmarshal(body, &p)
	if p.Error != "panic" || !strings.Contains(p.Detail, "chaos: injected panic") {
		t.Fatalf("crash payload: %+v", p)
	}
	if ch.Fired(chaos.PointWorkerPanic) != 1 {
		t.Fatal("chaos point did not fire")
	}
	// The server survived the crash: the next request succeeds.
	code, _, body = post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("post-crash run: got %d %s, want 200", code, body)
	}
	if !strings.Contains(string(srv.Registry().Exposition()), "serve_panics_total 1") {
		t.Fatal("serve_panics_total not incremented")
	}
}

func TestClientRetriesPanicsAndShedding(t *testing.T) {
	sc := testScale(t, 1200)
	ch := chaos.New(7)
	ch.Set(chaos.PointWorkerPanic, chaos.Spec{Prob: 1, Panic: true, Times: 2})
	srv := New(Config{Workers: 1, Chaos: ch, Scales: map[string]experiments.Scale{"test": sc}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	c := &Client{BaseURL: ts.URL, MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 3}
	resp, err := c.Run(context.Background(), Request{Experiment: "fig1", Scale: "test"})
	if err != nil {
		t.Fatalf("client should retry through injected panics: %v", err)
	}
	if resp.Fingerprint == "" {
		t.Fatal("empty response after retries")
	}
	if got := c.Retries.Load(); got < 2 {
		t.Fatalf("client retried %d times, want >= 2 (two injected panics)", got)
	}
}

func TestShutdownSuspendResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sc := testScale(t, 100000) // ~1s uninterrupted
	scales := map[string]experiments.Scale{"sus": sc}
	req := Request{Experiment: "fig1", Scale: "sus", Tenant: "t"}

	srv1 := New(Config{
		Workers: 1, SuspendDir: dir,
		DrainGrace: 50 * time.Millisecond, SuspendGrace: 10 * time.Second,
		Scales: scales,
	})
	ts1 := httptest.NewServer(srv1.Handler())

	type outcome struct {
		code int
		body []byte
	}
	res := make(chan outcome, 1)
	go func() {
		code, _, body := post(t, ts1.URL, req)
		res <- outcome{code, body}
	}()
	waitFor(t, 5*time.Second, func() bool { return srv1.busy.Load() == 1 })
	time.Sleep(200 * time.Millisecond) // let the run get well past warmup

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	out := <-res
	ts1.Close()
	if out.code != http.StatusServiceUnavailable {
		t.Fatalf("suspended run: got %d %s, want 503", out.code, out.body)
	}
	var p ErrorPayload
	json.Unmarshal(out.body, &p)
	if p.Error != "suspended" {
		t.Fatalf("suspended payload: %+v", p)
	}
	if saves, _ := srv1.SuspendController().Stats(); saves == 0 {
		t.Fatal("shutdown did not checkpoint the in-flight run")
	}
	if suspend.Pending(dir) == 0 {
		t.Fatal("no checkpoint on disk after suspend")
	}

	// A restarted server resumes the checkpoint and completes the run.
	srv2 := New(Config{Workers: 1, SuspendDir: dir, Scales: scales})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Shutdown(context.Background())
	code, _, body := post(t, ts2.URL, req)
	if code != http.StatusOK {
		t.Fatalf("resumed run: got %d %s", code, body)
	}
	resumed := decodeResponse(t, body)
	if _, resumes := srv2.SuspendController().Stats(); resumes == 0 {
		t.Fatal("restarted server did not resume from the checkpoint")
	}
	if suspend.Pending(dir) != 0 {
		t.Fatal("checkpoint not cleared after the resumed run completed")
	}

	// Control: the same numeric scale under a different name recomputes
	// from scratch (cache keys include the name). Byte-identical
	// artifacts mean identical markdown, metrics and fingerprint.
	ctrlScale := sc
	ctrlScale.Name = sc.Name + "-control"
	runner, err := experiments.ByID(req.Experiment)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := runner.Run(context.Background(), ctrlScale)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Fingerprint != ctrl.Fingerprint() {
		t.Fatalf("resumed fingerprint %s != control %s", resumed.Fingerprint, ctrl.Fingerprint())
	}
	if resumed.Markdown != ctrl.Markdown() {
		t.Fatal("resumed markdown differs from uninterrupted control")
	}
	for k, v := range ctrl.Metrics {
		if resumed.Metrics[k] != v {
			t.Fatalf("metric %s: resumed %v != control %v", k, resumed.Metrics[k], v)
		}
	}
}

func TestDrainingRejectsNewWork(t *testing.T) {
	slow := testScale(t, 4_000_000)
	srv := New(Config{
		Workers: 1, DrainGrace: 300 * time.Millisecond, SuspendGrace: 50 * time.Millisecond,
		Scales: map[string]experiments.Scale{"slow": slow},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	go postAsync(ts.URL, Request{Experiment: "fig1", Scale: "slow"})
	waitFor(t, 5*time.Second, func() bool { return srv.busy.Load() == 1 })

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	// While draining, new work is refused with 503 + Retry-After.
	waitFor(t, 5*time.Second, func() bool {
		code, hdr, body := post(t, ts.URL, Request{Experiment: "fig1", Scale: "slow"})
		if code != http.StatusServiceUnavailable {
			return false
		}
		var p ErrorPayload
		json.Unmarshal(body, &p)
		return p.Error == "draining" && hdr.Get("Retry-After") != ""
	})
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestHealthzStallWatchdog(t *testing.T) {
	sc := testScale(t, 1200)
	ch := chaos.New(11)
	ch.Set(chaos.PointRunStall, chaos.Spec{Prob: 1, Delay: 300 * time.Millisecond, Times: 3})
	srv := New(Config{
		Workers: 1, Chaos: ch, StallAfter: 50 * time.Millisecond,
		Scales: map[string]experiments.Scale{"test": sc},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	go postAsync(ts.URL, Request{Experiment: "fig1", Scale: "test"})
	stalled := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var p struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if p.Status == "stalled" {
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("stalled healthz returned %d, want 503", resp.StatusCode)
			}
			stalled = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !stalled {
		t.Fatal("watchdog never reported the chaos-stalled run")
	}
	if ch.Fired(chaos.PointRunStall) == 0 {
		t.Fatal("stall point never fired")
	}
}

func TestLoadGenSLOReport(t *testing.T) {
	sc := testScale(t, 1200)
	srv := New(Config{Workers: 2, Scales: map[string]experiments.Scale{"test": sc}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	c := &Client{BaseURL: ts.URL, BaseDelay: time.Millisecond, Seed: 5}
	rep, err := RunLoad(context.Background(), LoadConfig{
		Client: c, Experiments: []string{"fig1"}, Scale: "test",
		Tenants: []string{"a", "b"}, Requests: 8, Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded != 8 || rep.Failed != 0 {
		t.Fatalf("load run: %+v", rep)
	}
	if rep.WarmHits == 0 || rep.HitRatio <= 0 {
		t.Fatalf("repeats of one experiment should hit the cache: %+v", rep)
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS {
		t.Fatalf("latency percentiles inconsistent: p50=%.2f p99=%.2f", rep.P50MS, rep.P99MS)
	}
	m := rep.Metrics()
	for _, k := range []string{"serve_p50_ms", "serve_p99_ms", "serve_hit_ratio", "serve_tail_queue_ms"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("SLO metrics missing %s", k)
		}
	}
	if !strings.Contains(rep.String(), "latency:") {
		t.Fatal("report text rendering incomplete")
	}
	// Every request carried a span decomposition; the tail slice averages
	// the slowest 1% (at least one request), so both maps must be populated
	// and internally consistent.
	for _, timing := range []map[string]float64{rep.TimingMS, rep.TailTimingMS} {
		for _, k := range []string{"total", "queue", "run"} {
			if _, ok := timing[k]; !ok {
				t.Fatalf("timing decomposition missing %q: %v", k, timing)
			}
		}
	}
	if !strings.Contains(rep.String(), "server phases") {
		t.Fatal("report text omits the phase decomposition")
	}
}

func TestSpansEndpointAndResponseTiming(t *testing.T) {
	sc := testScale(t, 2000)
	srv := New(Config{Workers: 2, Scales: map[string]experiments.Scale{"test": sc}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	req := Request{Experiment: "fig1", Scale: "test", Tenant: "t0"}
	code, _, body := post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("cold run: %d %s", code, body)
	}
	cold := decodeResponse(t, body)
	// A cold run simulates, so its decomposition includes the execute phase
	// under the run span (cache probe + recipe execution).
	for _, key := range []string{"total", "queue", "run", "run.execute"} {
		if _, ok := cold.Timing[key]; !ok {
			t.Errorf("cold response timing missing %q: %v", key, cold.Timing)
		}
	}
	code, _, body = post(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("warm run: %d %s", code, body)
	}
	warm := decodeResponse(t, body)
	// A warm repeat is served from the memo cache: no execute span.
	if _, ok := warm.Timing["run.execute"]; ok {
		t.Errorf("warm response claims simulation time: %v", warm.Timing)
	}
	if _, ok := warm.Timing["total"]; !ok {
		t.Errorf("warm response timing missing total: %v", warm.Timing)
	}

	res, err := http.Get(ts.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var doc struct {
		Spans []*obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatalf("decode /spans: %v", err)
	}
	if len(doc.Spans) < 2 {
		t.Fatalf("/spans retained %d spans, want >= 2", len(doc.Spans))
	}
	outcomes := map[string]int{}
	for _, s := range doc.Spans {
		if s.Name != "request" {
			t.Errorf("root span named %q, want request", s.Name)
		}
		if s.Attrs["experiment"] != "fig1" || s.Attrs["tenant"] != "t0" {
			t.Errorf("span attrs incomplete: %v", s.Attrs)
		}
		outcomes[s.Attrs["outcome"]]++
		names := map[string]bool{}
		for _, c := range s.Children {
			names[c.Name] = true
		}
		if !names["queue"] || !names["run"] {
			t.Errorf("span %v missing queue/run children", names)
		}
	}
	if outcomes["ok"] == 0 || outcomes["ok_cached"] == 0 {
		t.Fatalf("expected one cold and one cached outcome, got %v", outcomes)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
