package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadConfig drives one load-generation session against a running
// server (cmd/nocload wraps it in a CLI).
type LoadConfig struct {
	// Client issues the requests (retry/backoff included in the measured
	// latency, as a real caller would experience it).
	Client *Client
	// Experiments cycles per request (default ["fig1"]).
	Experiments []string
	// Scale names the preset sent with every request (default "quick").
	Scale string
	// Tenants cycles per request so the server's fair scheduler is
	// exercised (default ["default"]).
	Tenants []string
	// Requests is the total request count (default 16).
	Requests int
	// Concurrency is the number of in-flight requests (default 4).
	Concurrency int
	// TimeoutSec is forwarded in each request (0 = server default).
	TimeoutSec float64
}

// SLOReport summarizes a load run.
type SLOReport struct {
	Requests   int
	Succeeded  int
	Failed     int
	Retries    int64
	Elapsed    time.Duration
	Throughput float64 // successful requests per second

	P50MS, P95MS, P99MS float64

	// WarmHits counts responses served with zero simulation work;
	// HitRatio is their fraction of successes.
	WarmHits int
	HitRatio float64

	// TimingMS is the mean server-side phase decomposition in milliseconds
	// across successes, keyed by span path ("queue", "run", "run.execute",
	// "run.cache.disk", "total") — the server's causal account of where
	// request time went, as opposed to the client-observed percentiles.
	TimingMS map[string]float64
	// TailTimingMS is the same decomposition averaged over the slowest 1%
	// of successes (at least one request): the phases behind P99MS. A tail
	// dominated by "queue" is an admission problem; one dominated by
	// "run.execute" is simulation cost; near-zero everything with a large
	// client latency points at transport or retries.
	TailTimingMS map[string]float64

	// Errors histograms terminal failures by message.
	Errors map[string]int
}

// RunLoad fires cfg.Requests requests with cfg.Concurrency workers and
// aggregates an SLO report. Individual request failures are recorded, not
// fatal; the returned error is reserved for setup problems.
func RunLoad(ctx context.Context, cfg LoadConfig) (*SLOReport, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("serve: LoadConfig.Client is required")
	}
	if len(cfg.Experiments) == 0 {
		cfg.Experiments = []string{"fig1"}
	}
	if cfg.Scale == "" {
		cfg.Scale = "quick"
	}
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = []string{"default"}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 16
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}

	retries0 := cfg.Client.Retries.Load()
	var (
		mu        sync.Mutex
		latencies []float64
		samples   []timingSample
		rep       = &SLOReport{Requests: cfg.Requests, Errors: map[string]int{}}
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				req := Request{
					Experiment: cfg.Experiments[i%len(cfg.Experiments)],
					Scale:      cfg.Scale,
					Tenant:     cfg.Tenants[i%len(cfg.Tenants)],
					TimeoutSec: cfg.TimeoutSec,
				}
				t0 := time.Now()
				resp, err := cfg.Client.Run(ctx, req)
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				if err != nil {
					rep.Failed++
					rep.Errors[errKey(err)]++
				} else {
					rep.Succeeded++
					latencies = append(latencies, ms)
					samples = append(samples, timingSample{ms: ms, timing: resp.Timing})
					if resp.FromCache {
						rep.WarmHits++
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			i = cfg.Requests // stop feeding; drain workers
		}
	}
	close(idx)
	wg.Wait()

	rep.Elapsed = time.Since(start)
	rep.Retries = cfg.Client.Retries.Load() - retries0
	if rep.Elapsed > 0 {
		rep.Throughput = float64(rep.Succeeded) / rep.Elapsed.Seconds()
	}
	rep.P50MS = percentile(append([]float64(nil), latencies...), 50)
	rep.P95MS = percentile(append([]float64(nil), latencies...), 95)
	rep.P99MS = percentile(latencies, 99)
	if rep.Succeeded > 0 {
		rep.HitRatio = float64(rep.WarmHits) / float64(rep.Succeeded)
	}
	if len(samples) > 0 {
		rep.TimingMS = meanTiming(samples)
		sort.Slice(samples, func(i, j int) bool { return samples[i].ms > samples[j].ms })
		tail := len(samples) / 100
		if tail < 1 {
			tail = 1
		}
		rep.TailTimingMS = meanTiming(samples[:tail])
	}
	return rep, nil
}

// timingSample pairs one successful request's client-observed latency with
// the server's span decomposition, so the tail can be sliced by latency.
type timingSample struct {
	ms     float64
	timing map[string]float64
}

// meanTiming averages the per-request span decompositions; requests whose
// response carried no timing (older server) count as all-zero so the means
// stay comparable across mixed fleets.
func meanTiming(samples []timingSample) map[string]float64 {
	out := map[string]float64{}
	for _, s := range samples {
		for k, v := range s.timing {
			out[k] += v
		}
	}
	for k := range out {
		out[k] /= float64(len(samples))
	}
	return out
}

// errKey compresses an error into a stable histogram bucket.
func errKey(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, ':'); i > 0 {
		// "serve: 429 tenant_queue_full" style prefixes bucket well.
		if len(s) > 60 {
			s = s[:60]
		}
	}
	return s
}

// String renders the report for terminals.
func (r *SLOReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests:   %d (%d ok, %d failed, %d retries)\n",
		r.Requests, r.Succeeded, r.Failed, r.Retries)
	fmt.Fprintf(&b, "elapsed:    %.2fs (%.1f req/s)\n", r.Elapsed.Seconds(), r.Throughput)
	fmt.Fprintf(&b, "latency:    p50 %.1fms  p95 %.1fms  p99 %.1fms\n", r.P50MS, r.P95MS, r.P99MS)
	fmt.Fprintf(&b, "warm hits:  %d (%.0f%% of successes)\n", r.WarmHits, 100*r.HitRatio)
	if len(r.TimingMS) > 0 {
		b.WriteString("server phases (mean / slowest 1%):\n")
		keys := make([]string, 0, len(r.TimingMS))
		for k := range r.TimingMS {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-16s %8.1fms %8.1fms\n", k, r.TimingMS[k], r.TailTimingMS[k])
		}
	}
	if len(r.Errors) > 0 {
		keys := make([]string, 0, len(r.Errors))
		for k := range r.Errors {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("errors:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %4d  %s\n", r.Errors[k], k)
		}
	}
	return b.String()
}

// Metrics returns the report's headline numbers keyed for bench.sh
// (serve_p50_ms, serve_p99_ms, serve_hit_ratio, ...).
func (r *SLOReport) Metrics() map[string]float64 {
	m := map[string]float64{
		"serve_p50_ms":     r.P50MS,
		"serve_p95_ms":     r.P95MS,
		"serve_p99_ms":     r.P99MS,
		"serve_hit_ratio":  r.HitRatio,
		"serve_throughput": r.Throughput,
		"serve_failed":     float64(r.Failed),
		"serve_retries":    float64(r.Retries),
	}
	// Span decomposition of the tail: where the p99 budget actually went.
	for _, k := range []string{"queue", "run", "run.execute", "run.cache.disk"} {
		if v, ok := r.TailTimingMS[k]; ok {
			m["serve_tail_"+strings.NewReplacer(".", "_").Replace(k)+"_ms"] = v
		}
	}
	return m
}
