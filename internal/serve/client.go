package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Client is the Go client for a nocserved instance. It retries the
// retryable outcomes — shed (429), draining/suspended (503), worker
// panics (500 "panic") and transport errors — with capped exponential
// backoff and full jitter, honoring Retry-After when the server sends
// one. Non-retryable outcomes (bad request, unknown experiment, timeout
// of the run itself) surface immediately.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts caps tries per Run (default 6).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep (default 5s).
	MaxDelay time.Duration
	// Seed makes the jitter deterministic for tests (0 = fixed default).
	Seed int64

	// Retries counts retried attempts across all Run calls (for SLO
	// reports).
	Retries atomic.Int64

	fillOnce sync.Once
	rngMu    sync.Mutex
	rng      *rand.Rand
}

// APIError is a non-200 response that Run gave up on.
type APIError struct {
	Code    int
	Payload ErrorPayload
}

func (e *APIError) Error() string {
	if e.Payload.Detail != "" {
		return fmt.Sprintf("serve: %d %s: %s", e.Code, e.Payload.Error, e.Payload.Detail)
	}
	return fmt.Sprintf("serve: %d %s", e.Code, e.Payload.Error)
}

// fill applies defaults exactly once; Run is called concurrently by the
// load generator's workers, so the writes must not repeat per call.
func (c *Client) fill() {
	c.fillOnce.Do(func() {
		if c.HTTP == nil {
			c.HTTP = http.DefaultClient
		}
		if c.MaxAttempts <= 0 {
			c.MaxAttempts = 6
		}
		if c.BaseDelay <= 0 {
			c.BaseDelay = 100 * time.Millisecond
		}
		if c.MaxDelay <= 0 {
			c.MaxDelay = 5 * time.Second
		}
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
	})
}

// Run posts req and returns the response, retrying retryable refusals.
func (c *Client) Run(ctx context.Context, req Request) (*Response, error) {
	c.fill()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out Response
	if err := c.retry(ctx, "/run", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// retry drives the attempt loop for one POST: retryable refusals back
// off and go again, everything else surfaces immediately.
func (c *Client) retry(ctx context.Context, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.Retries.Add(1)
			if err := sleepCtx(ctx, c.backoff(attempt, lastErr)); err != nil {
				return err
			}
		}
		err := c.once(ctx, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
	}
	return fmt.Errorf("serve: giving up after %d attempts: %w", c.MaxAttempts, lastErr)
}

// once performs a single POST round trip, decoding a 200 body into out.
func (c *Client) once(ctx context.Context, path string, body []byte, out any) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := c.HTTP.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 64<<20))
	if err != nil {
		return err
	}
	if res.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("serve: bad response body: %w", err)
		}
		return nil
	}
	var p ErrorPayload
	_ = json.Unmarshal(data, &p) // tolerate non-JSON error bodies
	apiErr := &APIError{Code: res.StatusCode, Payload: p}
	if ra := res.Header.Get("Retry-After"); ra != "" && p.RetryAfterSec == 0 {
		if sec, err := strconv.Atoi(ra); err == nil {
			apiErr.Payload.RetryAfterSec = float64(sec)
		}
	}
	return apiErr
}

// retryable classifies an error as worth another attempt.
func retryable(err error) bool {
	var api *APIError
	if errors.As(err, &api) {
		switch api.Code {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return true
		case http.StatusInternalServerError:
			// Worker panics are transient (the crashed run left no bad
			// state behind); other 500s are real failures.
			return api.Payload.Error == "panic"
		}
		return false
	}
	// Transport-level failures (connection refused during a restart,
	// reset mid-response) are retryable; context expiry is not.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// backoff computes the sleep before attempt n (1-based for the first
// retry): server Retry-After when present, else capped exponential with
// full jitter.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	var api *APIError
	if errors.As(lastErr, &api) && api.Payload.RetryAfterSec > 0 {
		return time.Duration(api.Payload.RetryAfterSec * float64(time.Second))
	}
	d := c.BaseDelay << (attempt - 1)
	if d > c.MaxDelay || d <= 0 {
		d = c.MaxDelay
	}
	c.rngMu.Lock()
	jittered := time.Duration(c.rng.Int63n(int64(d) + 1))
	c.rngMu.Unlock()
	return jittered
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
