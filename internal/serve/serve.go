// Package serve is the hardened simulation-as-a-service core behind
// cmd/nocserved: a multi-tenant run server that turns experiment requests
// (JSON: experiment id, scale, tenant) into figure/report artifacts.
//
// Hardening properties (each pinned by an acceptance test):
//
//   - Cancellation: every request's context reaches the innermost step
//     loops, which observe it at cycle-batch granularity; a disconnected
//     client or expired timeout stops simulation within one batch.
//   - Admission control: bounded per-tenant queues with round-robin fair
//     dispatch and a global cap; refusals are immediate 429/503 responses
//     with Retry-After, never unbounded queue growth.
//   - Isolation: a panicking run (including injected chaos panics) is
//     recovered in its worker, answered as a structured 500, and counted;
//     the server and every other tenant's requests keep going.
//   - Graceful shutdown: draining first waits for short runs, then flips
//     the suspend controller so long runs checkpoint themselves as
//     NOCCKPT01 containers, and only then hard-cancels stragglers. A
//     restarted server resumes suspended runs to byte-identical artifacts.
//
// The package is HTTP-handler-centric (Server.Handler) so tests can mount
// it on httptest servers; cmd/nocserved adds the listener, OS signals and
// hardened http.Server timeouts.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"heteronoc/internal/chaos"
	"heteronoc/internal/experiments"
	"heteronoc/internal/obs"
	"heteronoc/internal/reqstat"
	"heteronoc/internal/suspend"
)

// Request is the POST /run payload.
type Request struct {
	// Experiment is the experiment id (fig1..fig14, table1, dse, or an
	// extension id).
	Experiment string `json:"experiment"`
	// Scale names a simulation scale preset ("quick" or "full" by
	// default; servers may register more).
	Scale string `json:"scale"`
	// Tenant identifies the caller for fair scheduling; empty means
	// "default".
	Tenant string `json:"tenant,omitempty"`
	// TimeoutSec caps the run's wall time (0 = server default).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// CacheStats is the per-request cache accounting attached to a response.
type CacheStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Executions int64 `json:"executions"`
	Cycles     int64 `json:"cycles"`
}

// Response is the POST /run success payload.
type Response struct {
	Experiment  string             `json:"experiment"`
	Scale       string             `json:"scale"`
	Title       string             `json:"title"`
	Markdown    string             `json:"markdown"`
	Metrics     map[string]float64 `json:"metrics"`
	Fingerprint string             `json:"fingerprint"`
	Cache       CacheStats         `json:"cache"`
	ElapsedMS   float64            `json:"elapsed_ms"`
	// Timing decomposes the request's wall time into span phases
	// (milliseconds, dotted paths like "queue", "run.execute"): the data a
	// nocload SLO report uses to split p99 into queue wait vs cache miss vs
	// simulation time.
	Timing map[string]float64 `json:"timing_ms,omitempty"`
	// FromCache is true when the request ran zero simulation cycles and
	// zero recipe executions — answered entirely from memoized results.
	FromCache bool `json:"from_cache"`
}

// ErrorPayload is the JSON body of every non-200 response.
type ErrorPayload struct {
	Error         string  `json:"error"`
	Detail        string  `json:"detail,omitempty"`
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

// PanicError reports a run that panicked inside its worker. It is the
// structured remnant of the crash: the server survives, the request gets
// a 500 naming the panic.
type PanicError struct {
	Value string
}

func (e *PanicError) Error() string { return "serve: run panicked: " + e.Value }

// Config sizes and wires a Server. The zero value is usable: every field
// has a default.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueuePerTenant bounds each tenant's queue (default 4).
	QueuePerTenant int
	// MaxQueued bounds the total queue across tenants (default 8*Workers).
	MaxQueued int
	// DefaultTimeout caps a run when the request does not (0 = no cap).
	DefaultTimeout time.Duration
	// DrainGrace is how long Shutdown waits for in-flight runs to finish
	// before requesting suspension (default 2s).
	DrainGrace time.Duration
	// SuspendGrace is how long Shutdown then waits for runs to checkpoint
	// before hard-cancelling (default 10s).
	SuspendGrace time.Duration
	// SuspendDir stores NOCCKPT01 run checkpoints; "" disables
	// checkpoint-suspend (shutdown then cancels long runs outright).
	SuspendDir string
	// Chaos optionally arms fault injection (see internal/chaos). Nil is
	// inert.
	Chaos *chaos.Chaos
	// Scales maps request scale names to presets. Defaults to
	// {"quick": experiments.Quick(), "full": experiments.Full()};
	// supplying any map replaces the default entirely.
	Scales map[string]experiments.Scale
	// StallAfter is the /healthz watchdog threshold: busy workers with no
	// global simulation progress for this long report stalled
	// (default 10s).
	StallAfter time.Duration
	// RetryAfter is the hint returned with 429/503 (default 1s).
	RetryAfter time.Duration
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueuePerTenant <= 0 {
		c.QueuePerTenant = 4
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 8 * c.Workers
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 2 * time.Second
	}
	if c.SuspendGrace <= 0 {
		c.SuspendGrace = 10 * time.Second
	}
	if c.Scales == nil {
		c.Scales = map[string]experiments.Scale{
			"quick": experiments.Quick(),
			"full":  experiments.Full(),
		}
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// job is one admitted request moving through the queue to a worker.
type job struct {
	tenant string
	req    Request
	runner experiments.Runner
	scale  experiments.Scale
	// eval marks a design-space evaluation batch (POST /eval) instead of
	// an experiment run; runner and scale are unused for those.
	eval   *EvalRequest
	ctx    context.Context
	cancel context.CancelFunc
	col    *reqstat.Collector
	// span is the request's root span; qspan times the admission queue
	// (started at enqueue, ended when a worker picks the job up).
	span  *obs.Span
	qspan *obs.Span
	// done is buffered so a worker's send never blocks on a vanished
	// client.
	done chan jobResult
}

// finish closes the job's span tree with an outcome tag and publishes it
// to the server's span log.
func (j *job) finish(s *Server, outcome string) {
	j.qspan.End()
	j.span.SetAttr("outcome", outcome)
	j.span.End()
	s.spans.Add(j.span)
}

type jobResult struct {
	resp *Response
	eval *EvalResponse
	err  error
}

// Server is the service core. Create with New, mount Handler, stop with
// Shutdown.
type Server struct {
	cfg   Config
	sched *scheduler
	sus   *suspend.Controller
	reg   *obs.Registry
	mux   *http.ServeMux

	workers  sync.WaitGroup
	draining atomic.Bool

	// jobs tracks in-flight (dispatched) jobs for the hard-cancel phase.
	jobsMu sync.Mutex
	jobs   map[*job]struct{}

	busy atomic.Int64

	// Watchdog state for /healthz (same scheme as obs.Server, but keyed
	// on reqstat.GlobalProgress and gated on busy workers).
	watchMu    sync.Mutex
	lastProg   int64
	lastChange time.Time

	lat   *latencyTracker
	spans *obs.SpanLog

	mRequests  map[int]*obs.Counter
	mPanics    *obs.Counter
	mShed      *obs.Counter
	mSuspended *obs.Counter
	mResumed   *obs.Counter
	mHits      *obs.Counter
	mWarm      *obs.Counter
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:   cfg,
		sched: newScheduler(cfg.QueuePerTenant, cfg.MaxQueued),
		sus:   suspend.NewController(cfg.SuspendDir),
		reg:   obs.NewRegistry(),
		jobs:  map[*job]struct{}{},
		lat:   newLatencyTracker(1024),
		spans: obs.NewSpanLog(256),
	}
	s.lastChange = time.Now()

	s.mRequests = map[int]*obs.Counter{}
	for _, code := range []int{
		http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
		http.StatusMethodNotAllowed, http.StatusRequestTimeout,
		http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusServiceUnavailable,
	} {
		s.mRequests[code] = s.reg.NewCounter("serve_requests_total",
			"run requests by response code", obs.L("code", fmt.Sprint(code)))
	}
	s.mPanics = s.reg.NewCounter("serve_panics_total", "runs that panicked in a worker (recovered)")
	s.mShed = s.reg.NewCounter("serve_shed_total", "requests refused by admission control")
	s.mSuspended = s.reg.NewCounter("serve_suspended_total", "runs suspended to checkpoint at shutdown")
	s.mResumed = s.reg.NewCounter("serve_resumed_total", "runs resumed from a checkpoint")
	s.mHits = s.reg.NewCounter("serve_cache_hits_total", "runcache hits charged to requests")
	s.mWarm = s.reg.NewCounter("serve_warm_requests_total", "requests answered with zero simulation work")
	s.reg.RegisterGauge("serve_queue_depth", "queued (undispatched) jobs", nil,
		func() float64 { return float64(s.sched.depth()) })
	s.reg.RegisterGauge("serve_busy_workers", "workers currently running a job", nil,
		func() float64 { return float64(s.busy.Load()) })
	s.reg.RegisterGauge("serve_latency_p50_ms", "median /run latency (sliding window)", nil,
		func() float64 { return s.lat.percentile(50) })
	s.reg.RegisterGauge("serve_latency_p99_ms", "p99 /run latency (sliding window)", nil,
		func() float64 { return s.lat.percentile(99) })

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/eval", s.handleEval)
	s.mux.HandleFunc("/spans", s.handleSpans)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)

	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// PendingCheckpoints counts suspended runs waiting under the configured
// suspend directory (what cmd/nocserved logs at startup).
func (s *Server) PendingCheckpoints() int { return suspend.Pending(s.cfg.SuspendDir) }

// Handler returns the HTTP surface: POST /run, GET /metrics, /healthz,
// /statusz.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's metrics registry (for composition with a
// process-wide exposition).
func (s *Server) Registry() *obs.Registry { return s.reg }

// SuspendController exposes the shutdown suspend controller (tests flip
// and inspect it).
func (s *Server) SuspendController() *suspend.Controller { return s.sus }

// worker pulls jobs until the scheduler closes and drains.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.sched.dequeue()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job with panic isolation: a crash inside the
// experiment (or an injected chaos panic) becomes a structured error on
// j.done, never a dead server.
func (s *Server) runJob(j *job) {
	s.busy.Add(1)
	defer func() {
		s.trackJob(j, false)
		s.busy.Add(-1)
		if p := recover(); p != nil {
			s.mPanics.Inc()
			j.finish(s, "panic")
			j.done <- jobResult{err: &PanicError{Value: fmt.Sprint(p)}}
		}
	}()
	if err := j.ctx.Err(); err != nil {
		// The client vanished while the job sat queued; don't burn a
		// worker on it.
		j.finish(s, "cancelled_queued")
		j.done <- jobResult{err: err}
		return
	}
	j.qspan.End()
	s.cfg.Chaos.Hit(chaos.PointWorkerPanic)
	if j.eval != nil {
		s.runEvalJob(j)
		return
	}
	_, resumes0 := s.sus.Stats()
	start := time.Now()
	run := j.span.Child("run")
	rep, err := j.runner.Run(obs.ContextWithSpan(j.ctx, run), j.scale)
	run.End()
	if err != nil {
		j.finish(s, "error")
		j.done <- jobResult{err: err}
		return
	}
	elapsed := time.Since(start)
	if _, resumes1 := s.sus.Stats(); resumes1 > resumes0 {
		s.mResumed.Add(resumes1 - resumes0)
	}
	resp := &Response{
		Experiment:  j.req.Experiment,
		Scale:       j.req.Scale,
		Title:       rep.Title,
		Markdown:    rep.Markdown(),
		Metrics:     rep.Metrics,
		Fingerprint: rep.Fingerprint(),
		Cache: CacheStats{
			Hits:       j.col.CacheHits.Load(),
			Misses:     j.col.CacheMisses.Load(),
			Executions: j.col.Executions.Load(),
			Cycles:     j.col.Cycles.Load(),
		},
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	resp.FromCache = resp.Cache.Executions == 0 && resp.Cache.Cycles == 0
	s.mHits.Add(resp.Cache.Hits)
	if resp.FromCache {
		s.mWarm.Inc()
	}
	outcome := "ok"
	if resp.FromCache {
		outcome = "ok_cached"
	}
	j.finish(s, outcome)
	resp.Timing = j.span.Timing()
	s.lat.record(resp.ElapsedMS)
	j.done <- jobResult{resp: resp}
}

// trackJob registers/unregisters a dispatched job for hard cancellation.
func (s *Server) trackJob(j *job, add bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if add {
		s.jobs[j] = struct{}{}
	} else {
		delete(s.jobs, j)
	}
}

// cancelInflight hard-cancels every admitted, unfinished job — dispatched
// runs stop within a cycle batch, and still-queued jobs fall out of the
// worker loop's early ctx check (shutdown phase 3).
func (s *Server) cancelInflight() {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	for j := range s.jobs {
		j.cancel()
	}
}

// Shutdown drains the server: refuse new work, let short runs finish
// (DrainGrace), suspend long runs to checkpoints (SuspendGrace), then
// hard-cancel stragglers. It returns once every worker has exited or ctx
// expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.sched.close()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	wait := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-done:
			return true
		case <-ctx.Done():
			return false
		case <-t.C:
			return false
		}
	}
	if wait(s.cfg.DrainGrace) {
		return nil
	}
	// Phase 2: runs that outlive the grace checkpoint themselves at the
	// next cycle batch and unwind with ErrSuspended.
	saves0, _ := s.sus.Stats()
	s.sus.RequestSuspend()
	finished := wait(s.cfg.SuspendGrace)
	if saves1, _ := s.sus.Stats(); saves1 > saves0 {
		s.mSuspended.Add(saves1 - saves0)
	}
	if finished {
		return nil
	}
	// Phase 3: anything still running (e.g. a run without a suspendable
	// process) is cancelled outright.
	s.cancelInflight()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleRun admits, queues and answers one run request.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, ErrorPayload{Error: "method_not_allowed"})
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, ErrorPayload{Error: "bad_request", Detail: err.Error()})
		return
	}
	runner, err := experiments.ByID(req.Experiment)
	if err != nil {
		s.writeError(w, http.StatusNotFound, ErrorPayload{Error: "unknown_experiment", Detail: err.Error()})
		return
	}
	if req.Scale == "" {
		req.Scale = "quick"
	}
	sc, ok := s.cfg.Scales[req.Scale]
	if !ok {
		s.writeError(w, http.StatusBadRequest, ErrorPayload{Error: "unknown_scale", Detail: req.Scale})
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if s.draining.Load() {
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	}

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	var cancelTimeout context.CancelFunc = func() {}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	defer cancelTimeout()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	col := &reqstat.Collector{}
	ctx = reqstat.WithCollector(ctx, col)
	ctx = suspend.WithController(ctx, s.sus)
	ctx = chaos.WithContext(ctx, s.cfg.Chaos)
	span := obs.NewSpan("request")
	span.SetAttr("experiment", req.Experiment)
	span.SetAttr("scale", req.Scale)
	span.SetAttr("tenant", req.Tenant)
	ctx = obs.ContextWithSpan(ctx, span)

	j := &job{
		tenant: req.Tenant,
		req:    req,
		runner: runner,
		scale:  sc,
		ctx:    ctx,
		cancel: cancel,
		col:    col,
		span:   span,
		qspan:  span.Child("queue"),
		done:   make(chan jobResult, 1),
	}
	// Track from admission so a shutdown hard-cancel reaches queued jobs,
	// not just dispatched ones.
	s.trackJob(j, true)
	if err := s.sched.enqueue(j); err != nil {
		s.trackJob(j, false)
		switch {
		case errors.Is(err, ErrDraining):
			s.shed(w, http.StatusServiceUnavailable, "draining")
		case errors.Is(err, ErrTenantQueueFull):
			s.shed(w, http.StatusTooManyRequests, "tenant_queue_full")
		default:
			s.shed(w, http.StatusTooManyRequests, "overloaded")
		}
		return
	}
	select {
	case res := <-j.done:
		s.writeResult(w, res)
	case <-r.Context().Done():
		// Client gone: cancel the run (the step loops stop within one
		// batch) and record the outcome even though nobody reads it.
		cancel()
		res := <-j.done
		s.writeResult(w, res)
	}
}

// shed answers an admission refusal with a Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, code int, reason string) {
	s.mShed.Inc()
	retry := s.cfg.RetryAfter
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry.Seconds()+0.999)))
	s.writeError(w, code, ErrorPayload{Error: reason, RetryAfterSec: retry.Seconds()})
}

// writeResult maps a job outcome onto the HTTP surface.
func (s *Server) writeResult(w http.ResponseWriter, res jobResult) {
	switch {
	case res.err == nil:
		s.mRequests[http.StatusOK].Inc()
		w.Header().Set("Content-Type", "application/json")
		if res.eval != nil {
			json.NewEncoder(w).Encode(res.eval)
		} else {
			json.NewEncoder(w).Encode(res.resp)
		}
	case errors.Is(res.err, suspend.ErrSuspended):
		// The run checkpointed itself; the same request against a
		// restarted server resumes it.
		retry := s.cfg.RetryAfter
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry.Seconds()+0.999)))
		s.writeError(w, http.StatusServiceUnavailable, ErrorPayload{
			Error: "suspended", Detail: "run checkpointed for shutdown; retry to resume",
			RetryAfterSec: retry.Seconds(),
		})
	case errors.Is(res.err, context.DeadlineExceeded):
		s.writeError(w, http.StatusRequestTimeout, ErrorPayload{Error: "timeout"})
	case errors.Is(res.err, context.Canceled):
		s.writeError(w, http.StatusRequestTimeout, ErrorPayload{Error: "cancelled"})
	default:
		var pe *PanicError
		if errors.As(res.err, &pe) {
			s.writeError(w, http.StatusInternalServerError, ErrorPayload{Error: "panic", Detail: pe.Value})
			return
		}
		s.writeError(w, http.StatusInternalServerError, ErrorPayload{Error: "internal", Detail: res.err.Error()})
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, p ErrorPayload) {
	if c, ok := s.mRequests[code]; ok {
		c.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(p)
}

// handleSpans serves the most recent request span trees as JSON — the
// request-level complement of the per-packet attribution counters.
func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.spans.WriteJSON(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(s.reg.Exposition())
}

// handleHealthz reports stalled when workers are busy but global
// simulation progress has frozen for StallAfter — the signal a chaos
// run.stall or a wedged simulation produces.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	prog := reqstat.GlobalProgress()
	now := time.Now()
	s.watchMu.Lock()
	if prog != s.lastProg {
		s.lastProg = prog
		s.lastChange = now
	}
	frozen := now.Sub(s.lastChange)
	s.watchMu.Unlock()
	type payload struct {
		Status     string  `json:"status"`
		Progress   int64   `json:"progress"`
		Busy       int64   `json:"busy_workers"`
		Queued     int     `json:"queued"`
		StalledSec float64 `json:"stalled_sec,omitempty"`
	}
	p := payload{Status: "ok", Progress: prog, Busy: s.busy.Load(), Queued: s.sched.depth()}
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		p.Status = "draining"
	} else if p.Busy > 0 && frozen >= s.cfg.StallAfter {
		p.Status = "stalled"
		p.StalledSec = frozen.Seconds()
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(p)
}

// handleStatusz is a small human-readable status page.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	saves, resumes := s.sus.Stats()
	fmt.Fprintf(w, "nocserved\nworkers: %d (busy %d)\nqueued: %d\ndraining: %t\n",
		s.cfg.Workers, s.busy.Load(), s.sched.depth(), s.draining.Load())
	fmt.Fprintf(w, "checkpoints: %d saved, %d resumed, %d pending\n",
		saves, resumes, suspend.Pending(s.cfg.SuspendDir))
	if pts := s.cfg.Chaos.Points(); len(pts) > 0 {
		fmt.Fprintf(w, "chaos armed: %v\n", pts)
	}
}
