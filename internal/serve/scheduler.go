package serve

import (
	"errors"
	"sync"
)

// Admission-control errors, translated by the HTTP layer into 429 (shed)
// or 503 (draining) with a Retry-After hint.
var (
	// ErrTenantQueueFull means this tenant already has its fair share of
	// queued work; admitting more would let one tenant starve the rest.
	ErrTenantQueueFull = errors.New("serve: tenant queue full")
	// ErrOverloaded means the global queue cap is reached regardless of
	// tenant; the server is shedding load.
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrDraining means the server is shutting down and admits nothing.
	ErrDraining = errors.New("serve: server draining")
)

// scheduler is the bounded, tenant-fair job queue between the HTTP
// handlers and the worker pool. Each tenant owns a FIFO of at most
// perTenant jobs; workers consume tenants round-robin, one job per visit,
// so a tenant that floods its queue still gets only a 1/N share of worker
// time while N tenants have work pending. A global cap bounds total queued
// memory independent of the tenant count.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	perTenant int
	global    int

	queues map[string][]*job
	// order lists tenants with non-empty queues in arrival order; next is
	// the round-robin cursor into it.
	order  []string
	next   int
	queued int
	closed bool
}

func newScheduler(perTenant, global int) *scheduler {
	s := &scheduler{
		perTenant: perTenant,
		global:    global,
		queues:    map[string][]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue admits j or returns an admission error without blocking: the
// caller must translate a refusal into backpressure (429/503), never wait.
func (s *scheduler) enqueue(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrDraining
	}
	if s.queued >= s.global {
		return ErrOverloaded
	}
	q := s.queues[j.tenant]
	if len(q) >= s.perTenant {
		return ErrTenantQueueFull
	}
	if len(q) == 0 {
		s.order = append(s.order, j.tenant)
	}
	s.queues[j.tenant] = append(q, j)
	s.queued++
	s.cond.Signal()
	return nil
}

// dequeue blocks until a job is available, returning (nil, false) once the
// scheduler is closed and drained. Already-queued jobs are still handed
// out after close so a graceful shutdown finishes admitted work.
func (s *scheduler) dequeue() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.queued > 0 {
			if s.next >= len(s.order) {
				s.next = 0
			}
			t := s.order[s.next]
			q := s.queues[t]
			j := q[0]
			if len(q) == 1 {
				delete(s.queues, t)
				s.order = append(s.order[:s.next], s.order[s.next+1:]...)
				// next now points at the following tenant already.
			} else {
				s.queues[t] = q[1:]
				s.next++
			}
			s.queued--
			return j, true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// close stops admission and wakes all waiting workers; queued jobs drain.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// depth returns the number of queued (not yet dispatched) jobs.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}
