package chaos

import "context"

type ctxKey struct{}

// WithContext attaches c to the context so injection points deep in the
// run path (the traffic step loop's batch boundary) can be driven without
// threading a *Chaos through every layer. A nil c is fine; FromContext
// then returns nil and every hook is inert.
func WithContext(ctx context.Context, c *Chaos) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the attached Chaos, or nil.
func FromContext(ctx context.Context) *Chaos {
	c, _ := ctx.Value(ctxKey{}).(*Chaos)
	return c
}
