// Package chaos is the fault-injection layer behind the hardened run
// server's acceptance tests. A Chaos value holds a set of named injection
// points ("worker.panic", "disk.load.corrupt", ...), each with a firing
// probability and an action — delay, data corruption, or panic. The code
// under test calls the point hooks at its natural seams (the serve worker
// before running a job, the runcache disk tier around file I/O, the
// traffic step loop at batch boundaries); with no Chaos armed the hooks
// are nil checks and cost nothing.
//
// Draws are made from a seeded RNG behind a mutex, so a chaos run is
// reproducible given the same seed and the same sequence of point visits
// per goroutine interleaving — not bit-deterministic under concurrency,
// but statistically stable, which is what the graceful-degradation
// assertions need. Every firing is counted per point (Fired) so tests can
// assert the fault actually happened rather than silently passing against
// a healthy server.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Spec configures one injection point.
type Spec struct {
	// Prob is the firing probability per visit in [0,1].
	Prob float64
	// Delay is slept on firing (slow-disk, stalled-run injection).
	Delay time.Duration
	// Corrupt flips a byte of the data passed through Mangle on firing.
	Corrupt bool
	// Panic makes the point panic on firing (worker-crash injection).
	Panic bool
	// Times caps the number of firings (0 = unlimited).
	Times int
}

// Chaos is a set of armed injection points. The zero value and the nil
// pointer are both inert: every hook on a nil *Chaos is a no-op.
type Chaos struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
}

type point struct {
	spec  Spec
	fired int64
}

// New returns an empty chaos configuration drawing from the given seed.
func New(seed int64) *Chaos {
	if seed == 0 {
		seed = 1
	}
	return &Chaos{rng: rand.New(rand.NewSource(seed)), points: map[string]*point{}}
}

// Set arms (or re-arms) a point. A zero Spec disarms it.
func (c *Chaos) Set(name string, spec Spec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if spec == (Spec{}) {
		delete(c.points, name)
		return
	}
	c.points[name] = &point{spec: spec}
}

// Fired returns how many times the named point has fired.
func (c *Chaos) Fired(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.points[name]; ok {
		return p.fired
	}
	return 0
}

// Points lists the armed point names (sorted; for logs and /stats).
func (c *Chaos) Points() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.points))
	for n := range c.points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// draw decides whether the point fires this visit and returns its spec.
func (c *Chaos) draw(name string) (Spec, bool) {
	if c == nil {
		return Spec{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.points[name]
	if !ok {
		return Spec{}, false
	}
	if p.spec.Times > 0 && p.fired >= int64(p.spec.Times) {
		return Spec{}, false
	}
	if c.rng.Float64() >= p.spec.Prob {
		return Spec{}, false
	}
	p.fired++
	return p.spec, true
}

// Hit visits a point: sleeps the configured delay and panics if the point
// is armed to. Returns whether the point fired.
func (c *Chaos) Hit(name string) bool {
	spec, fired := c.draw(name)
	if !fired {
		return false
	}
	if spec.Delay > 0 {
		time.Sleep(spec.Delay)
	}
	if spec.Panic {
		panic(fmt.Sprintf("chaos: injected panic at %s", name))
	}
	return true
}

// Mangle visits a data-path point: on firing it applies the delay and, if
// Corrupt is set, returns a copy of data with one byte flipped (position
// drawn from the chaos RNG). Otherwise data is returned untouched.
func (c *Chaos) Mangle(name string, data []byte) []byte {
	spec, fired := c.draw(name)
	if !fired {
		return data
	}
	if spec.Delay > 0 {
		time.Sleep(spec.Delay)
	}
	if spec.Panic {
		panic(fmt.Sprintf("chaos: injected panic at %s", name))
	}
	if spec.Corrupt && len(data) > 0 {
		c.mu.Lock()
		i := c.rng.Intn(len(data))
		c.mu.Unlock()
		out := make([]byte, len(data))
		copy(out, data)
		out[i] ^= 0xff
		return out
	}
	return data
}

// Parse builds a Chaos from a CLI flag string: comma-separated
// name=action clauses, where action is one or more of
//
//	p<prob>     firing probability (default 1)
//	d<dur>      delay, e.g. d50ms
//	corrupt     flip a byte (data-path points)
//	panic       panic on firing
//	x<times>    fire at most <times> times
//
// joined by "+". Example:
//
//	worker.panic=p0.1+panic,disk.load.slow=d50ms+p0.5,disk.load.corrupt=corrupt+p0.2
func Parse(s string, seed int64) (*Chaos, error) {
	c := New(seed)
	if strings.TrimSpace(s) == "" {
		return c, nil
	}
	for _, clause := range strings.Split(s, ",") {
		name, actions, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("chaos: bad clause %q (want name=actions)", clause)
		}
		spec := Spec{Prob: 1}
		for _, a := range strings.Split(actions, "+") {
			switch {
			case a == "corrupt":
				spec.Corrupt = true
			case a == "panic":
				spec.Panic = true
			case strings.HasPrefix(a, "p"):
				p, err := strconv.ParseFloat(a[1:], 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("chaos: bad probability %q in %q", a, clause)
				}
				spec.Prob = p
			case strings.HasPrefix(a, "x"):
				n, err := strconv.Atoi(a[1:])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("chaos: bad count %q in %q", a, clause)
				}
				spec.Times = n
			case strings.HasPrefix(a, "d"):
				d, err := time.ParseDuration(a[1:])
				if err != nil || d < 0 {
					return nil, fmt.Errorf("chaos: bad delay %q in %q", a, clause)
				}
				spec.Delay = d
			default:
				return nil, fmt.Errorf("chaos: unknown action %q in %q", a, clause)
			}
		}
		c.Set(name, spec)
	}
	return c, nil
}

// Point names used across the tree, collected here so tests and flag
// writers don't drift from the injection sites.
const (
	PointWorkerPanic = "worker.panic"      // serve worker, before running a job
	PointDiskLoad    = "disk.load.slow"    // runcache disk tier, read path delay
	PointDiskCorrupt = "disk.load.corrupt" // runcache disk tier, read payload corruption
	PointDiskStore   = "disk.store.slow"   // runcache disk tier, write path delay
	PointRunStall    = "run.stall"         // traffic step loop, batch boundary
)
