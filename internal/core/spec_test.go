package core

import (
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	for _, l := range AllLayouts(8, 8) {
		data, err := LayoutJSON(l)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseLayoutJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if back.Name != l.Name || back.LinkRedist != l.LinkRedist {
			t.Errorf("%s: round trip changed identity: %+v", l.Name, SpecOf(back))
		}
		if got, want := SpecOf(back).Big, SpecOf(l).Big; len(got) != len(want) {
			t.Errorf("%s: big routers %v, want %v", l.Name, got, want)
		}
		for i := range l.Class {
			if back.Class[i] != l.Class[i] {
				t.Fatalf("%s: router %d class changed", l.Name, i)
			}
		}
	}
}

func TestSpecTorusRoundTrip(t *testing.T) {
	l := NewLayout(PlacementDiagonal, 8, 8, true).OnTorus()
	l.Name = "diag-torus"
	data, err := LayoutJSON(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseLayoutJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Mesh.Wrap() {
		t.Error("torus flag lost")
	}
	if _, _, big := back.Counts(); big != 16 {
		t.Errorf("big count %d", big)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []LayoutSpec{
		{Name: "tiny", Width: 1, Height: 8},
		{Name: "range", Width: 4, Height: 4, Big: []int{16}},
		{Name: "dup", Width: 4, Height: 4, Big: []int{3, 3}},
	}
	for _, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	if _, err := ParseLayoutJSON([]byte("{nope")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestSpecBaselineWhenNoBig(t *testing.T) {
	l, err := LayoutSpec{Name: "plain", Width: 4, Height: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if l.IsHetero() {
		t.Error("empty big set should build the homogeneous baseline")
	}
	if l.FlitWidthBits() != 192 {
		t.Error("baseline width wrong")
	}
}

func TestSpecBuildsRunnableNetwork(t *testing.T) {
	l, err := ParseLayoutJSON([]byte(`{"name":"x","width":4,"height":4,"big":[5,6,9,10],"linkRedist":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Network(); err != nil {
		t.Fatal(err)
	}
}
