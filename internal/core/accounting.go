package core

import (
	"fmt"
	"strings"
)

// Resources is the conservation accounting of Section 2 / Table 1.
type Resources struct {
	Layout string

	TotalVCs   int // routers * ports * VCs/PC
	BufferCnt  int // individual flit buffers (VCs * depth * ports summed)
	BufferBits int // BufferCnt * buffer width

	// BisectionBits is the summed width of links crossing the vertical
	// bisection cut (one direction).
	BisectionBits int

	// RouterPowerW is the summed router power at the 50%-activity
	// calibration point; AreaMM2 the summed router area.
	RouterPowerW float64
	AreaMM2      float64

	// WorstFreqGHz is the operating frequency (slowest router class).
	WorstFreqGHz float64
}

// Accounting computes the resource totals of a layout.
func (l Layout) Accounting() Resources {
	specs := Specs()
	res := Resources{Layout: l.Name, WorstFreqGHz: l.FreqGHz()}
	for r, c := range l.Class {
		s := specs[c]
		ports := l.Mesh.Radix(r) // 5 on a mesh, including the local port
		res.TotalVCs += s.VCs * ports
		bufs := s.VCs * ports * s.BufDepth
		res.BufferCnt += bufs
		width := s.BufferBits
		if !l.LinkRedist && c != ClassBaseline {
			// +B designs keep the baseline 192-bit datapath and buffers.
			width = specs[ClassBaseline].BufferBits
		}
		res.BufferBits += bufs * width
		res.RouterPowerW += s.PowerW
		res.AreaMM2 += s.AreaMM2
	}
	for _, lk := range l.Mesh.BisectionLinks() {
		res.BisectionBits += l.LinkBits(lk[0], lk[1])
	}
	return res
}

// LinkBits returns the width in bits of the link leaving router r via port
// p under this layout: 256 when either endpoint is big in a +BL design,
// 128 between two small routers, 192 otherwise (baseline and +B designs).
func (l Layout) LinkBits(r, p int) int {
	if !l.IsHetero() || !l.LinkRedist {
		return 192
	}
	wide := l.Class[r] == ClassBig
	if link, ok := l.Mesh.Neighbor(r, p); ok {
		wide = wide || l.Class[link.Router] == ClassBig
	}
	if wide {
		return 256
	}
	return 128
}

// PowerInequalityHolds checks the Section 2 guideline: the heterogeneous
// network's calibration-point router power must not exceed the
// homogeneous network's.
func (l Layout) PowerInequalityHolds() bool {
	specs := Specs()
	homo := float64(len(l.Class)) * specs[ClassBaseline].PowerW
	return l.Accounting().RouterPowerW <= homo+1e-9
}

// Table1 renders the Table 1 comparison between the homogeneous baseline
// and this heterogeneous layout as a markdown fragment.
func Table1(hetero Layout) string {
	w, h := hetero.Mesh.Dims()
	base := NewBaseline(w, h)
	ra, rb := base.Accounting(), hetero.Accounting()
	specs := Specs()
	var b strings.Builder
	fmt.Fprintf(&b, "| Design | Router | Power | Area | Frequency |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	bl := specs[ClassBaseline]
	fmt.Fprintf(&b, "| Homogeneous | %dVCs/%d depth/%db | %.2fW | %.3fmm2 | %.2f GHz |\n",
		bl.VCs, bl.BufDepth, bl.DatapathBits, bl.PowerW, bl.AreaMM2, bl.FreqGHz)
	sm, bg := specs[ClassSmall], specs[ClassBig]
	fmt.Fprintf(&b, "| Heterogeneous (small) | %dVCs/%d depth/%db | %.2fW | %.3fmm2 | %.2f GHz |\n",
		sm.VCs, sm.BufDepth, sm.DatapathBits, sm.PowerW, sm.AreaMM2, sm.FreqGHz)
	fmt.Fprintf(&b, "| Heterogeneous (big) | %dVCs/%d depth/%db | %.2fW | %.3fmm2 | %.2f GHz |\n",
		bg.VCs, bg.BufDepth, bg.DatapathBits, bg.PowerW, bg.AreaMM2, bg.FreqGHz)
	fmt.Fprintf(&b, "\nTotal buffers homogeneous: %d @ %d bits = %d bits\n",
		ra.BufferCnt, specs[ClassBaseline].BufferBits, ra.BufferBits)
	fmt.Fprintf(&b, "Total buffers heterogeneous: %d @ %d bits = %d bits (%.0f%% reduction)\n",
		rb.BufferCnt, specs[ClassSmall].BufferBits, rb.BufferBits,
		100*(1-float64(rb.BufferBits)/float64(ra.BufferBits)))
	fmt.Fprintf(&b, "Total VCs: homogeneous %d, heterogeneous %d\n", ra.TotalVCs, rb.TotalVCs)
	fmt.Fprintf(&b, "Bisection width: homogeneous %d bits, heterogeneous %d bits\n",
		ra.BisectionBits, rb.BisectionBits)
	fmt.Fprintf(&b, "Router area: homogeneous %.2f mm2, heterogeneous %.2f mm2\n", ra.AreaMM2, rb.AreaMM2)
	fmt.Fprintf(&b, "Router power (50%% activity): homogeneous %.2f W, heterogeneous %.2f W\n",
		ra.RouterPowerW, rb.RouterPowerW)
	return b.String()
}

// MinSmallRouters evaluates the Section 2 power inequality for an NxN mesh:
// the minimum number of small routers needed so the heterogeneous network
// does not exceed homogeneous power (38 on 8x8).
func MinSmallRouters(n int) int {
	specs := Specs()
	total := n * n
	pBase, pSmall, pBig := specs[ClassBaseline].PowerW, specs[ClassSmall].PowerW, specs[ClassBig].PowerW
	for ns := 0; ns <= total; ns++ {
		if pSmall*float64(ns)+pBig*float64(total-ns) <= pBase*float64(total) {
			return ns
		}
	}
	return total
}
