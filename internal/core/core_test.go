package core

import (
	"strings"
	"testing"

	"heteronoc/internal/traffic"
)

func TestBigRouterCounts(t *testing.T) {
	for _, p := range []Placement{PlacementCenter, PlacementRow25, PlacementDiagonal} {
		big := BigRouters(p, 8, 8)
		if len(big) != 16 {
			t.Errorf("%s: %d big routers, want 16 (=2N)", p, len(big))
		}
	}
}

func TestDiagonalPlacementGeometry(t *testing.T) {
	l := NewLayout(PlacementDiagonal, 8, 8, true)
	m := l.Mesh
	for i := 0; i < 8; i++ {
		if l.Class[m.RouterAt(i, i)] != ClassBig {
			t.Errorf("router (%d,%d) not big", i, i)
		}
		if l.Class[m.RouterAt(7-i, i)] != ClassBig {
			t.Errorf("router (%d,%d) not big", 7-i, i)
		}
	}
	// Every row and column has exactly two big routers.
	for y := 0; y < 8; y++ {
		n := 0
		for x := 0; x < 8; x++ {
			if l.Class[m.RouterAt(x, y)] == ClassBig {
				n++
			}
		}
		if n != 2 {
			t.Errorf("row %d has %d big routers, want 2", y, n)
		}
	}
}

func TestRow25Placement(t *testing.T) {
	l := NewLayout(PlacementRow25, 8, 8, false)
	m := l.Mesh
	for x := 0; x < 8; x++ {
		if l.Class[m.RouterAt(x, 1)] != ClassBig || l.Class[m.RouterAt(x, 4)] != ClassBig {
			t.Fatalf("rows 1/4 not fully big at column %d", x)
		}
	}
}

func TestCenterPlacement(t *testing.T) {
	l := NewLayout(PlacementCenter, 8, 8, false)
	m := l.Mesh
	for y := 2; y <= 5; y++ {
		for x := 2; x <= 5; x++ {
			if l.Class[m.RouterAt(x, y)] != ClassBig {
				t.Errorf("center router (%d,%d) not big", x, y)
			}
		}
	}
	if l.Class[0] != ClassSmall {
		t.Error("corner router not small")
	}
}

func TestVCConservation(t *testing.T) {
	base := NewBaseline(8, 8).Accounting()
	for _, l := range AllLayouts(8, 8)[1:] {
		res := l.Accounting()
		if res.TotalVCs != base.TotalVCs {
			t.Errorf("%s: total VCs %d, want %d (conservation)", l.Name, res.TotalVCs, base.TotalVCs)
		}
		if res.BufferCnt != base.BufferCnt {
			t.Errorf("%s: buffer count %d, want %d", l.Name, res.BufferCnt, base.BufferCnt)
		}
	}
}

func TestTable1Numbers(t *testing.T) {
	base := NewBaseline(8, 8).Accounting()
	if base.TotalVCs != 64*3*5 {
		t.Errorf("baseline total VCs %d, want 960", base.TotalVCs)
	}
	if base.BufferCnt != 4800 {
		t.Errorf("baseline buffers %d, want 4800", base.BufferCnt)
	}
	if base.BufferBits != 921600 {
		t.Errorf("baseline buffer bits %d, want 921600", base.BufferBits)
	}
	het := NewLayout(PlacementDiagonal, 8, 8, true).Accounting()
	if het.BufferBits != 614400 {
		t.Errorf("hetero buffer bits %d, want 614400 (33%% reduction)", het.BufferBits)
	}
	if base.BisectionBits != 8*192 {
		t.Errorf("baseline bisection %d, want 1536", base.BisectionBits)
	}
	// Router area: 18.56 mm2 homogeneous vs 18.08 heterogeneous (paper 3.5).
	if got := base.AreaMM2; got < 18.55 || got > 18.57 {
		t.Errorf("baseline area %.3f, want 18.56", got)
	}
	if got := het.AreaMM2; got < 18.07 || got > 18.09 {
		t.Errorf("hetero area %.3f, want 18.08", got)
	}
	// Hetero router power total 48*0.30 + 16*1.19 = 33.44 < 64*0.67 = 42.88.
	if got := het.RouterPowerW; got < 33.43 || got > 33.45 {
		t.Errorf("hetero power %.3f, want 33.44", got)
	}
}

func TestCenterBisectionMatchesEquation(t *testing.T) {
	// The paper's link-width equation: 192*8 = 128*4 + 256*4 for the
	// Center+BL cut (4 narrow + 4 wide links).
	l := NewLayout(PlacementCenter, 8, 8, true)
	res := l.Accounting()
	if res.BisectionBits != 4*128+4*256 {
		t.Errorf("Center+BL bisection %d bits, want %d", res.BisectionBits, 4*128+4*256)
	}
	base := NewBaseline(8, 8).Accounting()
	if res.BisectionBits != base.BisectionBits {
		t.Errorf("Center+BL bisection %d != baseline %d", res.BisectionBits, base.BisectionBits)
	}
}

func TestPowerInequality(t *testing.T) {
	if MinSmallRouters(8) != 38 {
		t.Errorf("minimum small routers = %d, want 38 (paper: ns >= 37.4)", MinSmallRouters(8))
	}
	for _, l := range AllLayouts(8, 8) {
		if !l.PowerInequalityHolds() {
			t.Errorf("%s violates the power inequality", l.Name)
		}
	}
}

func TestFlitWidthAndFrequency(t *testing.T) {
	base := NewBaseline(8, 8)
	if base.FlitWidthBits() != 192 || base.DataPacketFlits() != 6 {
		t.Error("baseline flit geometry wrong")
	}
	if base.FreqGHz() != 2.20 {
		t.Error("baseline frequency wrong")
	}
	bl := NewLayout(PlacementDiagonal, 8, 8, true)
	if bl.FlitWidthBits() != 128 {
		t.Error("+BL datapath width must be 128 bits")
	}
	if bl.DataPacketFlits() != 6 {
		t.Error("data packets are 6 flow-control flits in every layout (see DESIGN.md)")
	}
	if bl.FreqGHz() != 2.07 {
		t.Error("+BL frequency wrong")
	}
	b := NewLayout(PlacementDiagonal, 8, 8, false)
	if b.FlitWidthBits() != 192 || b.DataPacketFlits() != 6 {
		t.Error("+B must keep 192-bit flits")
	}
	if b.FreqGHz() != 2.07 {
		t.Error("+B runs at worst-case big-router frequency")
	}
}

func TestAllLayoutsValidateAndBuild(t *testing.T) {
	for _, l := range AllLayouts(8, 8) {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		n, err := l.Network()
		if err != nil {
			t.Errorf("%s: network build: %v", l.Name, err)
			continue
		}
		// Smoke: run a little traffic through each.
		res, err := traffic.Run(n, traffic.RunConfig{
			Pattern:        traffic.UniformRandom{N: 64},
			Process:        traffic.Bernoulli{P: 0.005},
			DataFlits:      l.DataPacketFlits(),
			WarmupPackets:  50,
			MeasurePackets: 300,
			Seed:           1,
		})
		if err != nil {
			t.Errorf("%s: run: %v", l.Name, err)
			continue
		}
		if res.AvgLatency <= 0 {
			t.Errorf("%s: no latency measured", l.Name)
		}
	}
}

func TestOnTorus(t *testing.T) {
	l := NewLayout(PlacementDiagonal, 8, 8, true).OnTorus()
	if !l.Mesh.Wrap() {
		t.Fatal("OnTorus did not produce a torus")
	}
	if _, _, big := l.Counts(); big != 16 {
		t.Errorf("torus layout big count %d, want 16", big)
	}
	if _, err := l.Network(); err != nil {
		t.Fatalf("torus network: %v", err)
	}
}

func TestLinkBits(t *testing.T) {
	l := NewLayout(PlacementDiagonal, 8, 8, true)
	m := l.Mesh
	// Router (0,0) is big: its east link to small (1,0) is wide.
	if got := l.LinkBits(m.RouterAt(0, 0), 0); got != 256 {
		t.Errorf("big-small link = %d bits, want 256", got)
	}
	// Small (2,0) to small (3,0): narrow.
	if got := l.LinkBits(m.RouterAt(2, 0), 0); got != 128 {
		t.Errorf("small-small link = %d bits, want 128", got)
	}
	b := NewLayout(PlacementDiagonal, 8, 8, false)
	if got := b.LinkBits(0, 0); got != 192 {
		t.Errorf("+B link = %d bits, want 192", got)
	}
}

func TestTable1Render(t *testing.T) {
	s := Table1(NewLayout(PlacementDiagonal, 8, 8, true))
	for _, want := range []string{"0.67W", "0.30W", "1.19W", "921600", "614400", "33% reduction", "2.07 GHz"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, s)
		}
	}
}

func TestCustomLayout(t *testing.T) {
	l := NewCustom("probe", 4, 4, []int{0, 5, 10, 15}, true)
	_, small, big := l.Counts()
	if big != 4 || small != 12 {
		t.Errorf("custom counts small=%d big=%d", small, big)
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRenderShowsPlacement(t *testing.T) {
	out := NewLayout(PlacementDiagonal, 8, 8, true).Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // title + 8 rows
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
	// Row 0: big at both corners.
	if lines[1][0] != 'B' || lines[1][14] != 'B' {
		t.Errorf("corners not big in:\n%s", out)
	}
	grid := out[strings.Index(out, "\n")+1:] // the title itself contains "+BL"
	if strings.Count(grid, "B") != 16 {
		t.Errorf("%d big routers rendered, want 16", strings.Count(grid, "B"))
	}
	base := NewBaseline(8, 8).Render()
	if strings.Count(base, "o") != 64 {
		t.Errorf("baseline render wrong:\n%s", base)
	}
}

func TestLayoutByName(t *testing.T) {
	for _, name := range []string{"Baseline", "Center+B", "Center+BL", "Row2_5+B", "Row2_5+BL", "Diagonal+B", "diagonal+bl"} {
		l, err := LayoutByName(name, 8, 8)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if l.Mesh.NumRouters() != 64 {
			t.Errorf("%s: wrong mesh", name)
		}
	}
	if _, err := LayoutByName("nope", 8, 8); err == nil {
		t.Error("unknown layout accepted")
	}
}

func TestBigRoutersOn4x4(t *testing.T) {
	// The DSE grid: diagonal on 4x4 gives 8 routers (both diagonals).
	diag := BigRouters(PlacementDiagonal, 4, 4)
	if len(diag) != 8 {
		t.Errorf("4x4 diagonal big count %d, want 8", len(diag))
	}
	center := BigRouters(PlacementCenter, 4, 4)
	if len(center) != 2*4 {
		t.Errorf("4x4 center big count %d, want 8", len(center))
	}
	row := BigRouters(PlacementRow25, 4, 4)
	if len(row) != 8 {
		t.Errorf("4x4 row big count %d, want 8", len(row))
	}
}
