// Package core implements the paper's contribution: the HeteroNoC
// heterogeneous mesh composed of small power-efficient routers and big
// high-performance routers, the six studied placements (Center, Row2_5,
// Diagonal — each with buffer-only or buffer+link redistribution), and the
// resource-conservation accounting behind Table 1 (constant total VC count,
// constant bisection bandwidth, 33% fewer buffer bits, network power and
// area below the homogeneous baseline).
package core

import (
	"fmt"
	"sort"
	"strings"

	"heteronoc/internal/noc"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
)

// RouterClass identifies the three router designs of Table 1.
type RouterClass uint8

const (
	// ClassBaseline is the homogeneous router: 3 VCs/PC, 5-flit buffers,
	// 192-bit datapath.
	ClassBaseline RouterClass = iota
	// ClassSmall is the power-efficient router: 2 VCs/PC, 128-bit datapath.
	ClassSmall
	// ClassBig is the performance router: 6 VCs/PC, 256-bit datapath.
	ClassBig
)

func (c RouterClass) String() string {
	switch c {
	case ClassBaseline:
		return "baseline"
	case ClassSmall:
		return "small"
	case ClassBig:
		return "big"
	}
	return "?"
}

// ClassSpec is the published per-router design point (Table 1). PowerW is
// the router power at the 50% activity calibration point; the runtime power
// model scales components with simulated activity.
type ClassSpec struct {
	Class        RouterClass
	VCs          int
	BufDepth     int
	DatapathBits int // crossbar/link width
	BufferBits   int // buffer (flit) width
	PowerW       float64
	AreaMM2      float64
	FreqGHz      float64
}

// Specs returns the three Table 1 design points.
//
// Note the buffer width subtlety: in the +BL designs all buffers are
// 128-bit FIFOs (big routers only widen crossbar and links), which is what
// produces the paper's 33% buffer-bit reduction.
func Specs() map[RouterClass]ClassSpec {
	return map[RouterClass]ClassSpec{
		ClassBaseline: {Class: ClassBaseline, VCs: 3, BufDepth: 5, DatapathBits: 192, BufferBits: 192, PowerW: 0.67, AreaMM2: 0.290, FreqGHz: 2.20},
		ClassSmall:    {Class: ClassSmall, VCs: 2, BufDepth: 5, DatapathBits: 128, BufferBits: 128, PowerW: 0.30, AreaMM2: 0.235, FreqGHz: 2.25},
		ClassBig:      {Class: ClassBig, VCs: 6, BufDepth: 5, DatapathBits: 256, BufferBits: 128, PowerW: 1.19, AreaMM2: 0.425, FreqGHz: 2.07},
	}
}

// Placement names the big-router arrangements evaluated in the paper.
type Placement string

const (
	PlacementBaseline Placement = "Baseline"
	PlacementCenter   Placement = "Center"
	PlacementRow25    Placement = "Row2_5"
	PlacementDiagonal Placement = "Diagonal"
)

// Layout is a concrete HeteroNoC configuration: which routers are big and
// whether links are redistributed along with buffers.
type Layout struct {
	// Name is e.g. "Baseline", "Center+B", "Diagonal+BL".
	Name string
	// Mesh is the router grid (a mesh or torus).
	Mesh *topology.Mesh
	// Class holds the router class per router ID.
	Class []RouterClass
	// LinkRedist selects the +BL designs: 128-bit flits with wide (256-bit,
	// two-flit) links at big routers. Without it (+B) the network keeps the
	// baseline 192-bit links and only the VC counts differ.
	LinkRedist bool
}

// NewBaseline returns the homogeneous W x H mesh baseline.
func NewBaseline(w, h int) Layout {
	m := topology.NewMesh(w, h)
	cls := make([]RouterClass, m.NumRouters())
	return Layout{Name: "Baseline", Mesh: m, Class: cls}
}

// NewLayout builds one of the paper's placements on a W x H mesh. The
// number of big routers is 2N for an NxN mesh (16 on 8x8), chosen by the
// power inequality of Section 2 plus symmetry.
func NewLayout(p Placement, w, h int, linkRedist bool) Layout {
	if p == PlacementBaseline {
		return NewBaseline(w, h)
	}
	m := topology.NewMesh(w, h)
	l := Layout{Mesh: m, Class: make([]RouterClass, m.NumRouters()), LinkRedist: linkRedist}
	for i := range l.Class {
		l.Class[i] = ClassSmall
	}
	for _, r := range BigRouters(p, w, h) {
		l.Class[r] = ClassBig
	}
	suffix := "+B"
	if linkRedist {
		suffix = "+BL"
	}
	l.Name = string(p) + suffix
	return l
}

// BigRouters returns the big-router IDs for a placement on a W x H mesh.
func BigRouters(p Placement, w, h int) []int {
	m := topology.NewMesh(w, h)
	set := map[int]bool{}
	switch p {
	case PlacementCenter:
		// A centered block of 2*max(w,h) routers: on 8x8, the central 4x4.
		n := 2 * max(w, h)
		side := 1
		for side*side < n {
			side++
		}
		x0, y0 := (w-side)/2, (h-side)/2
		for y := y0; y < y0+side && len(set) < n; y++ {
			for x := x0; x < x0+side && len(set) < n; x++ {
				set[m.RouterAt(x, y)] = true
			}
		}
	case PlacementRow25:
		// Big routers fill the second and fifth rows (indices 1 and h-3 on
		// 8x8 — rows 1 and 4 as drawn in Figure 3(c)).
		r1, r2 := 1, 4
		if h != 8 {
			r1, r2 = h/4, 3*h/4
		}
		for x := 0; x < w; x++ {
			set[m.RouterAt(x, r1)] = true
			set[m.RouterAt(x, r2)] = true
		}
	case PlacementDiagonal:
		for i := 0; i < w && i < h; i++ {
			set[m.RouterAt(i, i)] = true
			set[m.RouterAt(w-1-i, i)] = true
		}
	default:
		return nil
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// NewCustom builds a layout from an explicit big-router set, used by the
// design-space exploration.
func NewCustom(name string, w, h int, big []int, linkRedist bool) Layout {
	m := topology.NewMesh(w, h)
	l := Layout{Name: name, Mesh: m, Class: make([]RouterClass, m.NumRouters()), LinkRedist: linkRedist}
	for i := range l.Class {
		l.Class[i] = ClassSmall
	}
	for _, r := range big {
		l.Class[r] = ClassBig
	}
	return l
}

// AllLayouts returns the seven configurations of Figure 3 for a W x H mesh.
func AllLayouts(w, h int) []Layout {
	return []Layout{
		NewBaseline(w, h),
		NewLayout(PlacementCenter, w, h, false),
		NewLayout(PlacementRow25, w, h, false),
		NewLayout(PlacementDiagonal, w, h, false),
		NewLayout(PlacementCenter, w, h, true),
		NewLayout(PlacementRow25, w, h, true),
		NewLayout(PlacementDiagonal, w, h, true),
	}
}

// IsHetero reports whether the layout contains non-baseline routers.
func (l Layout) IsHetero() bool {
	for _, c := range l.Class {
		if c != ClassBaseline {
			return true
		}
	}
	return false
}

// BigSet returns a per-router boolean mask of big routers.
func (l Layout) BigSet() []bool {
	out := make([]bool, len(l.Class))
	for i, c := range l.Class {
		out[i] = c == ClassBig
	}
	return out
}

// Counts returns the number of routers of each class.
func (l Layout) Counts() (baseline, small, big int) {
	for _, c := range l.Class {
		switch c {
		case ClassBaseline:
			baseline++
		case ClassSmall:
			small++
		case ClassBig:
			big++
		}
	}
	return
}

// FlitWidthBits returns the network flit width: 192 bits for the baseline
// and the buffer-only (+B) designs, 128 bits when links are redistributed.
func (l Layout) FlitWidthBits() int {
	if l.IsHetero() && l.LinkRedist {
		return 128
	}
	return 192
}

// FreqGHz returns the network clock: the paper runs heterogeneous networks
// at the worst-case (big router) frequency.
func (l Layout) FreqGHz() float64 {
	specs := Specs()
	f := specs[ClassBaseline].FreqGHz
	if l.IsHetero() {
		f = specs[ClassBig].FreqGHz
	}
	return f
}

// DataPacketFlits returns the flow-control flit count of the paper's
// 1024-bit cache-line packet: 6 in every layout.
//
// Modeling note (see DESIGN.md §6): the simulator follows the Orion-era
// abstraction the paper's results imply — the flit is the unit of flow
// control and buffering in both networks, link width enters performance
// through the slot count (a 256-bit wide link moves two flits per cycle,
// which is the paper's flit combining), and enters power through per-bit
// energies (128/192/256-bit datapaths). Under a strict bit-serial reading
// (8x128-bit flits over single-flit narrow links) the heterogeneous network
// would lose ~25% packet capacity on small-small links and could not
// reproduce the paper's throughput gains; the abstraction chosen here does
// reproduce them.
func (l Layout) DataPacketFlits() int { return 6 }

// RouterConfigs converts the layout into simulator router configurations.
func (l Layout) RouterConfigs() []noc.RouterConfig {
	specs := Specs()
	out := make([]noc.RouterConfig, len(l.Class))
	for i, c := range l.Class {
		s := specs[c]
		out[i] = noc.RouterConfig{
			VCs:      s.VCs,
			BufDepth: s.BufDepth,
			Wide:     l.LinkRedist && c == ClassBig,
			// The split-datapath crossbar and dual output arbiters of
			// Section 3 come with the link redistribution: every router in
			// a +BL network has them (needed to source/merge combined
			// flits). +B routers get the SA upgrade without the split
			// datapath; baseline routers keep the classic allocator.
			SplitDatapath: l.LinkRedist && c != ClassBaseline,
			ImprovedSA:    c != ClassBaseline,
		}
	}
	return out
}

// Network builds a simulator network for the layout with X-Y routing (or
// dateline X-Y on a torus).
func (l Layout) Network() (*noc.Network, error) {
	var alg routing.Algorithm
	if l.Mesh.Wrap() {
		alg = routing.NewTorusXY(l.Mesh)
	} else {
		alg = routing.NewXY(l.Mesh)
	}
	return l.NetworkWith(alg)
}

// NetworkWith builds a simulator network with a custom routing algorithm.
func (l Layout) NetworkWith(alg routing.Algorithm) (*noc.Network, error) {
	return noc.New(noc.Config{
		Topo:           l.Mesh,
		Routing:        alg,
		Routers:        l.RouterConfigs(),
		FlitWidthBits:  l.FlitWidthBits(),
		WatchdogCycles: 100000,
	})
}

// OnTorus re-bases the layout onto a torus of the same dimensions with the
// same router classes, for the Section 5.1.1 comparison.
func (l Layout) OnTorus() Layout {
	w, h := l.Mesh.Dims()
	t := l
	t.Mesh = topology.NewTorus(w, h)
	t.Name = l.Name + "(torus)"
	cls := make([]RouterClass, len(l.Class))
	copy(cls, l.Class)
	t.Class = cls
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate checks the layout invariants.
func (l Layout) Validate() error {
	if len(l.Class) != l.Mesh.NumRouters() {
		return fmt.Errorf("core: %d classes for %d routers", len(l.Class), l.Mesh.NumRouters())
	}
	base, small, big := l.Counts()
	if base > 0 && (small > 0 || big > 0) {
		return fmt.Errorf("core: layout %s mixes baseline with hetero classes", l.Name)
	}
	return nil
}

// Render draws the layout as an ASCII grid: 'B' big routers, 's' small,
// 'o' baseline — the Figure 3 diagrams in text form.
func (l Layout) Render() string {
	w, h := l.Mesh.Dims()
	var b []byte
	b = append(b, []byte(l.Name+" ("+l.Mesh.Name()+")\n")...)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := byte('o')
			switch l.Class[l.Mesh.RouterAt(x, y)] {
			case ClassBig:
				c = 'B'
			case ClassSmall:
				c = 's'
			}
			b = append(b, c, ' ')
		}
		b = append(b, '\n')
	}
	return string(b)
}

// LayoutByName resolves the Figure 3 configuration names
// ("Baseline", "Center+B", "Diagonal+BL", ...) case-insensitively.
func LayoutByName(name string, w, h int) (Layout, error) {
	if strings.EqualFold(name, "baseline") {
		return NewBaseline(w, h), nil
	}
	for _, p := range []Placement{PlacementCenter, PlacementRow25, PlacementDiagonal} {
		for _, bl := range []bool{false, true} {
			l := NewLayout(p, w, h, bl)
			if strings.EqualFold(l.Name, name) {
				return l, nil
			}
		}
	}
	return Layout{}, fmt.Errorf("core: unknown layout %q (want Baseline or {Center,Row2_5,Diagonal}+{B,BL})", name)
}
