package core

import (
	"encoding/json"
	"fmt"
	"sort"
)

// LayoutSpec is the JSON-serializable description of a HeteroNoC layout,
// so tools (noxsim -config, the DSE) can exchange custom placements
// without code changes.
//
//	{
//	  "name": "my-layout",
//	  "width": 8, "height": 8,
//	  "torus": false,
//	  "big": [0, 9, 18, 27, 36, 45, 54, 63],
//	  "linkRedist": true
//	}
type LayoutSpec struct {
	Name   string `json:"name"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	Torus  bool   `json:"torus,omitempty"`
	// Big lists the big-router IDs; empty means the homogeneous baseline.
	Big        []int `json:"big,omitempty"`
	LinkRedist bool  `json:"linkRedist,omitempty"`
}

// Validate checks the spec's ranges.
func (s LayoutSpec) Validate() error {
	if s.Width < 2 || s.Height < 2 {
		return fmt.Errorf("core: layout %q needs at least a 2x2 mesh, got %dx%d", s.Name, s.Width, s.Height)
	}
	n := s.Width * s.Height
	seen := map[int]bool{}
	for _, b := range s.Big {
		if b < 0 || b >= n {
			return fmt.Errorf("core: layout %q: big router %d out of range [0,%d)", s.Name, b, n)
		}
		if seen[b] {
			return fmt.Errorf("core: layout %q: duplicate big router %d", s.Name, b)
		}
		seen[b] = true
	}
	return nil
}

// Build materializes the spec into a Layout.
func (s LayoutSpec) Build() (Layout, error) {
	if err := s.Validate(); err != nil {
		return Layout{}, err
	}
	name := s.Name
	if name == "" {
		name = "custom"
	}
	var l Layout
	if len(s.Big) == 0 {
		l = NewBaseline(s.Width, s.Height)
		l.Name = name
	} else {
		l = NewCustom(name, s.Width, s.Height, s.Big, s.LinkRedist)
	}
	if s.Torus {
		l = l.OnTorus()
		l.Name = name // OnTorus decorates the name; keep the user's choice
	}
	return l, nil
}

// SpecOf captures a layout back into its serializable form.
func SpecOf(l Layout) LayoutSpec {
	w, h := l.Mesh.Dims()
	s := LayoutSpec{
		Name:       l.Name,
		Width:      w,
		Height:     h,
		Torus:      l.Mesh.Wrap(),
		LinkRedist: l.LinkRedist,
	}
	for r, c := range l.Class {
		if c == ClassBig {
			s.Big = append(s.Big, r)
		}
	}
	sort.Ints(s.Big)
	return s
}

// ParseLayoutJSON decodes and builds a layout from JSON bytes.
func ParseLayoutJSON(data []byte) (Layout, error) {
	var s LayoutSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return Layout{}, fmt.Errorf("core: parsing layout spec: %w", err)
	}
	return s.Build()
}

// LayoutJSON encodes a layout's spec as indented JSON.
func LayoutJSON(l Layout) ([]byte, error) {
	return json.MarshalIndent(SpecOf(l), "", "  ")
}
