module heteronoc

go 1.22
