// Command heatmap renders the Figure 1/2 utilization heat maps as ASCII.
//
// Usage:
//
//	heatmap [-topo mesh|cmesh|fbfly] [-rate 0.06] [-packets 50000]
//	        [-timeseries ts.csv] [-stride 500]
//
// -timeseries additionally samples per-router buffer occupancy and link
// utilization every -stride cycles during the run and writes the windowed
// time series (CSV for a .csv path, JSON otherwise) — the raw material for
// animating the heat map over time rather than averaging the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"heteronoc/internal/noc"
	"heteronoc/internal/plot"
	"heteronoc/internal/routing"
	"heteronoc/internal/stats"
	"heteronoc/internal/topology"
	"heteronoc/internal/traffic"
)

func main() {
	topoName := flag.String("topo", "mesh", "topology: mesh (8x8), cmesh (4x4 C=4), fbfly (4x4 C=4)")
	rate := flag.Float64("rate", 0.06, "injection rate in packets/node/cycle")
	packets := flag.Int("packets", 50000, "measured packets")
	svgPath := flag.String("svg", "", "also write the buffer-utilization map as an SVG file")
	tsPath := flag.String("timeseries", "", "write a per-router occupancy/utilization time series to this file (.csv for CSV, else JSON)")
	stride := flag.Int64("stride", 500, "time-series sampling stride in cycles")
	flag.Parse()

	var topo topology.Topology
	var alg routing.Algorithm
	var w, h int
	switch *topoName {
	case "mesh":
		m := topology.NewMesh(8, 8)
		topo, alg, w, h = m, routing.NewXY(m), 8, 8
	case "cmesh":
		m := topology.NewCMesh(4, 4, 4)
		topo, alg, w, h = m, routing.NewXY(m), 4, 4
	case "fbfly":
		f := topology.NewFBfly(4, 4, 4)
		topo, alg, w, h = f, routing.NewFBflyRC(f), 4, 4
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}
	net, err := noc.New(noc.Config{
		Topo:           topo,
		Routing:        alg,
		Routers:        []noc.RouterConfig{{VCs: 3, BufDepth: 5}},
		FlitWidthBits:  192,
		WatchdogCycles: 100000,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var sampler *noc.Sampler
	if *tsPath != "" {
		sampler = noc.NewSampler(net, noc.SampleConfig{Stride: *stride, PerRouter: true})
		sampler.Attach()
	}
	res, err := traffic.Run(net, traffic.RunConfig{
		Pattern:        traffic.UniformRandom{N: topo.NumTerminals()},
		Process:        traffic.Bernoulli{P: *rate},
		DataFlits:      6,
		WarmupPackets:  *packets / 50,
		MeasurePackets: *packets,
		Seed:           42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf := make([]float64, topo.NumRouters())
	link := make([]float64, topo.NumRouters())
	for i, a := range res.Activity {
		buf[i] = a.BufOccupancy
		link[i] = a.LinkUtil
	}
	fmt.Println(stats.NewHeatmap("Buffer utilization", w, h, buf).Render())
	fmt.Println(stats.NewHeatmap("Link utilization", w, h, link).Render())
	if *svgPath != "" {
		svg := (&plot.HeatChart{Title: "Buffer utilization (" + *topoName + ")", W: w, H: h, Values: buf}).SVG()
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if sampler != nil {
		f, err := os.Create(*tsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ts := sampler.Series()
		if strings.HasSuffix(*tsPath, ".csv") {
			err = ts.WriteCSV(f)
		} else {
			err = ts.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d samples, %d columns)\n", *tsPath, len(ts.Cycles), len(ts.Columns))
	}
}
