// Command nocload load-tests a running nocserved and prints an SLO
// report: latency percentiles, throughput, warm-cache hit ratio, retries
// and an error histogram.
//
// Usage:
//
//	nocload -url http://127.0.0.1:8080 [-n 32] [-c 4] [-exp fig1,fig7]
//	        [-scale quick] [-tenants a,b,c] [-timeout 0] [-json]
//
// The client retries shed (429), draining/suspended (503) and
// worker-panic (500) responses with capped exponential backoff and full
// jitter, so the report measures what a well-behaved caller experiences
// against a loaded or chaos-injected server.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"heteronoc/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "nocserved base URL")
	n := flag.Int("n", 32, "total requests")
	c := flag.Int("c", 4, "concurrent requests")
	exps := flag.String("exp", "fig1", "comma list of experiment ids to cycle through")
	scale := flag.String("scale", "quick", "scale preset sent with every request")
	tenants := flag.String("tenants", "default", "comma list of tenant names to cycle through")
	timeoutSec := flag.Float64("timeout", 0, "per-request run timeout in seconds (0 = server default)")
	attempts := flag.Int("attempts", 6, "max attempts per request (retries on 429/503/panic)")
	jsonOut := flag.Bool("json", false, "print the SLO report as JSON metrics")
	seed := flag.Int64("seed", 1, "retry-jitter seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &serve.Client{
		BaseURL:     strings.TrimRight(*url, "/"),
		MaxAttempts: *attempts,
		BaseDelay:   100 * time.Millisecond,
		Seed:        *seed,
	}
	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		Client:      client,
		Experiments: strings.Split(*exps, ","),
		Scale:       *scale,
		Tenants:     strings.Split(*tenants, ","),
		Requests:    *n,
		Concurrency: *c,
		TimeoutSec:  *timeoutSec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		data, _ := json.MarshalIndent(rep.Metrics(), "", "  ")
		fmt.Println(string(data))
	} else {
		fmt.Print(rep.String())
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}
