package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"heteronoc/internal/ckpt"
)

// buildCheckpoint writes a small valid NOCCKPT01 container to dir and
// returns its path and bytes.
func buildCheckpoint(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	w := ckpt.NewWriter(ckpt.Header{
		Kind: "test-run", Version: 1, Cycle: 12345, Flits: 7, Queued: 3,
		NextPktID: 99, Fingerprint: 0xdeadbeefcafe,
	})
	w.Str("body-field")
	w.I64(-42)
	w.Bytes([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	data := w.Finish()
	p := filepath.Join(dir, "valid.ckpt")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p, data
}

func TestValidateFileAcceptsValidCheckpoint(t *testing.T) {
	p, _ := buildCheckpoint(t, t.TempDir())
	if err := validateFile(p); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	if !validate([]string{p}) {
		t.Fatal("validate() reported failure for a valid file")
	}
}

func TestValidateFileRejectsTruncation(t *testing.T) {
	dir := t.TempDir()
	_, data := buildCheckpoint(t, dir)
	// Every truncation point must fail with ErrCorrupt: inside the magic,
	// inside the header, inside the body, and into the CRC footer.
	for _, cut := range []int{0, 3, len(ckpt.Magic) + 2, len(data) / 2, len(data) - 4, len(data) - 1} {
		p := filepath.Join(dir, fmt.Sprintf("trunc-%d.ckpt", cut))
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		err := validateFile(p)
		if err == nil {
			t.Fatalf("cut=%d: truncated checkpoint validated", cut)
		}
		if !errors.Is(err, ckpt.ErrCorrupt) {
			t.Fatalf("cut=%d: error %v does not wrap ckpt.ErrCorrupt", cut, err)
		}
		if validate([]string{p}) {
			t.Fatalf("cut=%d: validate() reported ok (CLI would exit 0)", cut)
		}
	}
}

func TestValidateFileRejectsBitFlips(t *testing.T) {
	dir := t.TempDir()
	_, data := buildCheckpoint(t, dir)
	// Flip one bit in each region: magic, header fields, body payload and
	// the CRC footer itself. All must fail closed with ErrCorrupt.
	regions := map[string]int{
		"magic":  2,
		"header": len(ckpt.Magic) + 3,
		"body":   len(data) - 12,
		"footer": len(data) - 2,
	}
	for name, off := range regions {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		p := filepath.Join(dir, "flip-"+name+".ckpt")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		err := validateFile(p)
		if err == nil {
			t.Fatalf("%s flip at %d validated", name, off)
		}
		if !errors.Is(err, ckpt.ErrCorrupt) {
			t.Fatalf("%s flip: error %v does not wrap ckpt.ErrCorrupt", name, err)
		}
		if validate([]string{p}) {
			t.Fatalf("%s flip: validate() reported ok (CLI would exit 0)", name)
		}
	}
}

func TestValidateFileRejectsMissingFile(t *testing.T) {
	if err := validateFile(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("missing file validated")
	}
}
