// Command ckpttool inspects NOCCKPT01 checkpoint files written by noxsim
// (-ckptout) and the experiment pipeline's persistent caches.
//
// Usage:
//
//	ckpttool info file...       print each checkpoint's header
//	ckpttool validate file...   verify magic, CRC and header; exit 1 on any failure
//	ckpttool diff a b           compare two checkpoints field by field
//
// info reads only the header, so it works even when the body is from a
// newer (unknown) state version; validate checks the whole container's
// integrity without interpreting the body.
package main

import (
	"bytes"
	"fmt"
	"os"

	"heteronoc/internal/ckpt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "info":
		if len(args) == 0 {
			usage()
		}
		exit(info(args))
	case "validate":
		if len(args) == 0 {
			usage()
		}
		exit(validate(args))
	case "diff":
		if len(args) != 2 {
			usage()
		}
		exit(diff(args[0], args[1]))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ckpttool info|validate file... | ckpttool diff a b")
	os.Exit(2)
}

func exit(ok bool) {
	if !ok {
		os.Exit(1)
	}
}

func info(paths []string) bool {
	ok := true
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			ok = false
			continue
		}
		h, err := ckpt.ReadHeader(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", p, err)
			ok = false
			continue
		}
		fmt.Printf("%s:\n", p)
		printHeader(h, int64(len(data)))
	}
	return ok
}

func printHeader(h ckpt.Header, size int64) {
	fmt.Printf("  kind         %s (v%d)\n", h.Kind, h.Version)
	fmt.Printf("  size         %d bytes\n", size)
	fmt.Printf("  cycle        %d\n", h.Cycle)
	fmt.Printf("  flits        %d in network\n", h.Flits)
	fmt.Printf("  queued       %d packets\n", h.Queued)
	fmt.Printf("  next pkt id  %d\n", h.NextPktID)
	fmt.Printf("  fingerprint  %016x\n", h.Fingerprint)
}

func validate(paths []string) bool {
	ok := true
	for _, p := range paths {
		if err := validateFile(p); err != nil {
			fmt.Printf("%s: INVALID: %v\n", p, err)
			ok = false
			continue
		}
		data, _ := os.ReadFile(p)
		h, _ := ckpt.ReadHeader(data)
		fmt.Printf("%s: ok (%s v%d, cycle %d, fingerprint %016x)\n",
			p, h.Kind, h.Version, h.Cycle, h.Fingerprint)
	}
	return ok
}

// validateFile verifies one container's integrity: magic, header layout
// and the CRC over the whole file. Any damage — truncation, a flipped
// bit anywhere from header to footer — surfaces as an error wrapping
// ckpt.ErrCorrupt, which the CLI turns into a nonzero exit.
func validateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	_, err = ckpt.NewReader(data)
	return err
}

func diff(pa, pb string) bool {
	da, err := os.ReadFile(pa)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	db, err := os.ReadFile(pb)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	if bytes.Equal(da, db) {
		fmt.Printf("identical (%d bytes)\n", len(da))
		return true
	}
	ha, erra := ckpt.ReadHeader(da)
	hb, errb := ckpt.ReadHeader(db)
	if erra != nil || errb != nil {
		fmt.Printf("differ; unreadable header (%v / %v)\n", erra, errb)
		return false
	}
	cmp := func(field string, a, b any) {
		if a != b {
			fmt.Printf("  %-12s %v != %v\n", field, a, b)
		}
	}
	fmt.Printf("differ (%d vs %d bytes):\n", len(da), len(db))
	cmp("kind", ha.Kind, hb.Kind)
	cmp("version", ha.Version, hb.Version)
	cmp("cycle", ha.Cycle, hb.Cycle)
	cmp("flits", ha.Flits, hb.Flits)
	cmp("queued", ha.Queued, hb.Queued)
	cmp("next pkt id", ha.NextPktID, hb.NextPktID)
	cmp("fingerprint", fmt.Sprintf("%016x", ha.Fingerprint), fmt.Sprintf("%016x", hb.Fingerprint))
	if ha == hb {
		fmt.Println("  headers identical; bodies differ")
	}
	return false
}
