// Command tracetool works with the repository's trace file format: it
// records synthetic benchmark traces to disk (so they can be analyzed or
// shipped), inspects trace files, and prints entries — the bridge for
// users who want to replay their own memory traces through the CMP
// simulator (see internal/trace.FileReader).
//
// It also handles the binary flit-trace format produced by noc.FlitTracer:
// nocrec records a traced mesh run, nocinfo summarizes a trace file, and
// nocexport converts one to Chrome trace-event JSON for Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	tracetool gen  -bench SPECjbb -core 0 -n 100000 -out jbb0.trc
//	tracetool info -in jbb0.trc
//	tracetool head -in jbb0.trc -n 20
//	tracetool nocrec    -packets 2000 -rate 0.06 -out run.flt
//	tracetool nocinfo   -in run.flt
//	tracetool nocexport -in run.flt -out run.trace.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"heteronoc/internal/noc"
	"heteronoc/internal/obs"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
	"heteronoc/internal/trace"
	"heteronoc/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "head":
		head(os.Args[2:])
	case "nocrec":
		nocrec(os.Args[2:])
	case "nocinfo":
		nocinfo(os.Args[2:])
	case "nocexport":
		nocexport(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool gen|info|head|nocrec|nocinfo|nocexport [flags]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "SPECjbb", "benchmark profile name")
	core := fs.Int("core", 0, "core id (selects the deterministic stream)")
	n := fs.Int("n", 100000, "entries to record")
	lineBytes := fs.Int("line", 128, "cache line size in bytes")
	out := fs.String("out", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gen: -out is required")
		os.Exit(2)
	}
	p, err := trace.ProfileByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Record(f, trace.NewGenerator(p, *core, *lineBytes), *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d entries of %s/core%d to %s\n", *n, *bench, *core, *out)
}

func open(path string) *trace.FileReader {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r, err := trace.NewFileReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return r
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "info: -in is required")
		os.Exit(2)
	}
	r := open(*in)
	st := trace.Summarize(r, 0)
	fmt.Printf("entries        %d\n", st.Entries)
	fmt.Printf("instructions   %d (memory ops %.1f%%)\n", st.Instructions(), 100*st.MemFrac())
	fmt.Printf("writes         %.1f%%\n", 100*st.WriteFrac())
	fmt.Printf("distinct lines %d (footprint %.1f KiB at 128B lines)\n",
		st.DistinctLines, float64(st.DistinctLines)*128/1024)
	fmt.Printf("same/next-line %.1f%%\n", 100*st.LocalityFrac())
	fmt.Printf("mean gap       %.2f\n", st.MeanGap())
}

func head(args []string) {
	fs := flag.NewFlagSet("head", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	n := fs.Int("n", 10, "entries to print")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "head: -in is required")
		os.Exit(2)
	}
	r := open(*in)
	for i := 0; i < *n && !r.Exhausted(); i++ {
		e := r.Next()
		if r.Exhausted() {
			break
		}
		op := "R"
		if e.Write {
			op = "W"
		}
		fmt.Printf("%6d: gap=%-4d %s %#x\n", i, e.Gap, op, e.Addr)
	}
}

func nocrec(args []string) {
	fs := flag.NewFlagSet("nocrec", flag.ExitOnError)
	side := fs.Int("mesh", 4, "mesh side length (side x side routers)")
	rate := fs.Float64("rate", 0.06, "injection rate in packets/node/cycle")
	packets := fs.Int("packets", 2000, "measured packets")
	ring := fs.Int("ring", 4096, "per-router ring capacity in records")
	macroOnly := fs.Bool("macro", false, "capture only packet life-cycle events (no VC/SA/credit detail)")
	seed := fs.Int64("seed", 42, "traffic seed")
	out := fs.String("out", "", "output flit-trace file (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "nocrec: -out is required")
		os.Exit(2)
	}
	m := topology.NewMesh(*side, *side)
	net, err := noc.New(noc.Config{
		Topo:           m,
		Routing:        routing.NewXY(m),
		Routers:        []noc.RouterConfig{{VCs: 3, BufDepth: 5}},
		FlitWidthBits:  192,
		WatchdogCycles: 100000,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ft := noc.NewNetworkFlitTracer(net, noc.FlitTracerConfig{PerRouter: *ring, MacroOnly: *macroOnly})
	net.SetTracer(ft)
	if _, err := traffic.Run(net, traffic.RunConfig{
		Pattern:        traffic.UniformRandom{N: m.NumTerminals()},
		Process:        traffic.Bernoulli{P: *rate},
		DataFlits:      6,
		WarmupPackets:  *packets / 10,
		MeasurePackets: *packets,
		Seed:           *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	err = ft.WriteBinary(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s (%d overwritten in ring)\n", ft.Len(), *out, ft.Dropped())
}

func openFlitTrace(path string) *noc.FlitTrace {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := noc.ReadFlitTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return tr
}

func nocinfo(args []string) {
	fs := flag.NewFlagSet("nocinfo", flag.ExitOnError)
	in := fs.String("in", "", "flit-trace file (required)")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "nocinfo: -in is required")
		os.Exit(2)
	}
	tr := openFlitTrace(*in)
	fmt.Printf("routers  %d\n", tr.NumRouters)
	fmt.Printf("records  %d\n", len(tr.Records))
	if len(tr.Records) == 0 {
		return
	}
	minCycle, maxCycle := tr.Records[0].Cycle, tr.Records[0].Cycle
	kinds := map[noc.EventKind]int{}
	packets := map[uint64]bool{}
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Cycle < minCycle {
			minCycle = r.Cycle
		}
		if r.Cycle > maxCycle {
			maxCycle = r.Cycle
		}
		kinds[r.Kind]++
		packets[r.Packet] = true
	}
	fmt.Printf("cycles   %d..%d\n", minCycle, maxCycle)
	fmt.Printf("packets  %d distinct\n", len(packets))
	for k := noc.EventKind(0); k < 32; k++ {
		if n, ok := kinds[k]; ok {
			fmt.Printf("  %-12s %d\n", k, n)
		}
	}
}

func nocexport(args []string) {
	fs := flag.NewFlagSet("nocexport", flag.ExitOnError)
	in := fs.String("in", "", "flit-trace file (required)")
	out := fs.String("out", "", "Chrome trace-event JSON output (required)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "nocexport: -in and -out are required")
		os.Exit(2)
	}
	tr := openFlitTrace(*in)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	nEvents, err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocexport: generated trace failed validation:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d records, %d events; open in ui.perfetto.dev)\n",
		*out, len(tr.Records), nEvents)
}
