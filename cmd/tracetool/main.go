// Command tracetool works with the repository's trace file format: it
// records synthetic benchmark traces to disk (so they can be analyzed or
// shipped), inspects trace files, and prints entries — the bridge for
// users who want to replay their own memory traces through the CMP
// simulator (see internal/trace.FileReader).
//
// Usage:
//
//	tracetool gen  -bench SPECjbb -core 0 -n 100000 -out jbb0.trc
//	tracetool info -in jbb0.trc
//	tracetool head -in jbb0.trc -n 20
package main

import (
	"flag"
	"fmt"
	"os"

	"heteronoc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "head":
		head(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool gen|info|head [flags]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "SPECjbb", "benchmark profile name")
	core := fs.Int("core", 0, "core id (selects the deterministic stream)")
	n := fs.Int("n", 100000, "entries to record")
	lineBytes := fs.Int("line", 128, "cache line size in bytes")
	out := fs.String("out", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gen: -out is required")
		os.Exit(2)
	}
	p, err := trace.ProfileByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Record(f, trace.NewGenerator(p, *core, *lineBytes), *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d entries of %s/core%d to %s\n", *n, *bench, *core, *out)
}

func open(path string) *trace.FileReader {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r, err := trace.NewFileReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return r
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "info: -in is required")
		os.Exit(2)
	}
	r := open(*in)
	st := trace.Summarize(r, 0)
	fmt.Printf("entries        %d\n", st.Entries)
	fmt.Printf("instructions   %d (memory ops %.1f%%)\n", st.Instructions(), 100*st.MemFrac())
	fmt.Printf("writes         %.1f%%\n", 100*st.WriteFrac())
	fmt.Printf("distinct lines %d (footprint %.1f KiB at 128B lines)\n",
		st.DistinctLines, float64(st.DistinctLines)*128/1024)
	fmt.Printf("same/next-line %.1f%%\n", 100*st.LocalityFrac())
	fmt.Printf("mean gap       %.2f\n", st.MeanGap())
}

func head(args []string) {
	fs := flag.NewFlagSet("head", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	n := fs.Int("n", 10, "entries to print")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "head: -in is required")
		os.Exit(2)
	}
	r := open(*in)
	for i := 0; i < *n && !r.Exhausted(); i++ {
		e := r.Next()
		if r.Exhausted() {
			break
		}
		op := "R"
		if e.Write {
			op = "W"
		}
		fmt.Printf("%6d: gap=%-4d %s %#x\n", i, e.Gap, op, e.Addr)
	}
}
