// Command tracetool works with the repository's trace file format: it
// records synthetic benchmark traces to disk (so they can be analyzed or
// shipped), inspects trace files, and prints entries — the bridge for
// users who want to replay their own memory traces through the CMP
// simulator (see internal/trace.FileReader).
//
// It also handles the binary flit-trace format produced by noc.FlitTracer:
// nocrec records a traced mesh run, nocinfo summarizes a trace file, and
// nocexport converts one to Chrome trace-event JSON for Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	tracetool gen    -bench SPECjbb -core 0 -n 100000 -out jbb0.trc
//	tracetool record -workload mc-incast -core 0 -n 100000 -out incast0.trc2
//	tracetool morph  -in jbb0.trc -out hot.trc2 -hotspot-frac 0.4 -hotspot-lines 16
//	tracetool info   -in jbb0.trc
//	tracetool head   -in incast0.trc2 -n 20
//	tracetool seek-check -in incast0.trc2
//	tracetool nocrec    -packets 2000 -rate 0.06 -out run.flt
//	tracetool nocinfo   -in run.flt
//	tracetool nocexport -in run.flt -out run.trace.json
//	tracetool attr      -hetero -packets 2000 -out attr.trace.json
//
// attr runs a mesh with the always-on latency attribution plus the
// opt-in per-hop recorder: it prints the exact per-packet causal account
// (queue, vc_alloc, switch_alloc, credit, link, serialization) and can
// export the hop stream for Perfetto.
//
// gen writes the flat HNTR v1 stream; record writes the chunked,
// seekable HNTR2 format and accepts adversarial workload names
// (hotspot, mc-incast, ...) alongside the Table 2 profiles. info, head
// and seek-check sniff the format from the file magic; info and head
// exit nonzero when a trace turns out to be corrupt rather than merely
// short.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/obs"
	"heteronoc/internal/routing"
	"heteronoc/internal/topology"
	"heteronoc/internal/trace"
	"heteronoc/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "record":
		record(os.Args[2:])
	case "morph":
		morph(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "head":
		head(os.Args[2:])
	case "seek-check":
		seekCheck(os.Args[2:])
	case "nocrec":
		nocrec(os.Args[2:])
	case "nocinfo":
		nocinfo(os.Args[2:])
	case "nocexport":
		nocexport(os.Args[2:])
	case "attr":
		attrCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool gen|record|morph|info|head|seek-check|nocrec|nocinfo|nocexport|attr [flags]")
	os.Exit(2)
}

// attrCmd runs a mesh with the per-hop attribution recorder on and prints
// the causal latency account; with -out it also writes the per-router hop
// stream as Chrome trace-event JSON for Perfetto.
func attrCmd(args []string) {
	fs := flag.NewFlagSet("attr", flag.ExitOnError)
	side := fs.Int("mesh", 8, "mesh side length (side x side routers)")
	hetero := fs.Bool("hetero", false, "use the Diagonal+BL layout instead of the homogeneous baseline")
	rate := fs.Float64("rate", 0.03, "injection rate in packets/node/cycle")
	hotFrac := fs.Float64("hotspot-frac", 0.2, "fraction of traffic aimed at the center tile (0 = uniform random)")
	packets := fs.Int("packets", 2000, "measured packets")
	ring := fs.Int("ring", 65536, "attribution ring capacity in hop records")
	seed := fs.Int64("seed", 42, "traffic seed")
	out := fs.String("out", "", "output Chrome trace-event JSON (optional)")
	fs.Parse(args)
	l := core.NewBaseline(*side, *side)
	if *hetero {
		l = core.NewLayout(core.PlacementDiagonal, *side, *side, true)
	}
	net, err := l.Network()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rec := noc.NewAttrTrace(*ring)
	net.SetAttrRecorder(rec)
	n := l.Mesh.NumTerminals()
	var pat traffic.Pattern = traffic.UniformRandom{N: n}
	if *hotFrac > 0 {
		pat = traffic.Hotspot{N: n, Hot: (*side/2)*(*side) + *side/2, Frac: *hotFrac}
	}
	res, err := traffic.Run(net, traffic.RunConfig{
		Pattern:        pat,
		Process:        traffic.Bernoulli{P: *rate},
		DataFlits:      l.DataPacketFlits(),
		WarmupPackets:  *packets / 10,
		MeasurePackets: *packets,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s  %s  avg latency %.1f cycles\n", l.Name, pat.Name(), res.AvgLatency)
	for b, name := range noc.AttrBucketNames() {
		fmt.Printf("  %-14s %8.2f cycles/packet\n", name, res.Attr[b])
	}
	fmt.Printf("  %-14s %8.2f (exact account when 0)\n", "residual", res.AttrResidual)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = rec.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d hop records to %s (%d overwritten in ring)\n", len(rec.Records()), *out, rec.Dropped())
	}
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "SPECjbb", "benchmark profile name")
	core := fs.Int("core", 0, "core id (selects the deterministic stream)")
	n := fs.Int("n", 100000, "entries to record")
	lineBytes := fs.Int("line", 128, "cache line size in bytes")
	out := fs.String("out", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gen: -out is required")
		os.Exit(2)
	}
	p, err := trace.ProfileByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Record(f, trace.NewGenerator(p, *core, *lineBytes), *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d entries of %s/core%d to %s\n", *n, *bench, *core, *out)
}

// open sniffs the trace format (flat v1 or chunked HNTR2) and returns a
// replaying reader.
func open(path string) trace.File {
	r, err := trace.Open(path, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return r
}

// checkErr exits nonzero when replay ended in a corrupt tail — the
// distinction FileReader/ChunkReader track via Err — so scripts can gate
// on trace integrity.
func checkErr(r trace.File) {
	if err := r.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "SPECjbb", "workload name: a Table 2 profile or an adversarial class (hotspot, mc-incast, shared-storm, thrash)")
	core := fs.Int("core", 0, "core id (selects the deterministic stream)")
	n := fs.Int("n", 100000, "entries to record")
	lineBytes := fs.Int("line", 128, "cache line size in bytes")
	tiles := fs.Int("tiles", 64, "tile count of the target CMP (fixes adversarial home/MC mappings)")
	chunk := fs.Int("chunk", 0, "entries per chunk (0 = default)")
	out := fs.String("out", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "record: -out is required")
		os.Exit(2)
	}
	src, err := trace.NewWorkloadReader(*workload, *core, *lineBytes, *tiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	err = trace.RecordChunked(f, src, *n, *chunk)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d entries of %s/core%d to %s (chunked)\n", *n, *workload, *core, *out)
}

func morph(args []string) {
	fs := flag.NewFlagSet("morph", flag.ExitOnError)
	in := fs.String("in", "", "input trace file, either format (required)")
	out := fs.String("out", "", "output chunked trace file (required)")
	hotFrac := fs.Float64("hotspot-frac", 0, "fraction of accesses redirected to the hot line set")
	hotLines := fs.Int("hotspot-lines", 16, "hot set size in cache lines")
	hotTile := fs.Int("hot-tile", 0, "home tile of the hot lines")
	incastFrac := fs.Float64("incast-frac", 0, "fraction of accesses remapped onto one memory controller")
	incastMC := fs.Int("incast-mc", 0, "target memory controller index")
	incastMCs := fs.Int("incast-mcs", 4, "memory controller count")
	gapScale := fs.Float64("gap-scale", 0, "gap multiplier (<1 is more memory-bound, 0 = unchanged)")
	tiles := fs.Int("tiles", 64, "tile count of the target CMP")
	lineBytes := fs.Int("line", 128, "cache line size in bytes")
	seed := fs.Uint64("seed", 1, "morph decision seed")
	chunk := fs.Int("chunk", 0, "entries per chunk (0 = default)")
	n := fs.Int64("n", 0, "entries to convert (0 = whole input)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "morph: -in and -out are required")
		os.Exit(2)
	}
	src := open(*in)
	spec := trace.MorphSpec{
		HotspotFrac: *hotFrac, HotspotLines: *hotLines, HotTile: *hotTile,
		IncastFrac: *incastFrac, IncastMC: *incastMC, IncastMCs: *incastMCs,
		GapScale: *gapScale,
	}
	m := trace.NewMorph(src, spec, *tiles, *lineBytes, *seed)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w, err := trace.NewChunkWriter(f, *chunk)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for *n == 0 || w.Count() < *n {
		e := m.Next()
		if src.Exhausted() {
			break
		}
		if err := w.Write(e); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	err = w.Close()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	checkErr(src)
	fmt.Printf("morphed %d entries of %s into %s\n", w.Count(), *in, *out)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "info: -in is required")
		os.Exit(2)
	}
	r := open(*in)
	if cr, ok := r.(*trace.ChunkFile); ok {
		fmt.Printf("format         chunked (HNTR2), %d entries indexed\n", cr.Len())
	} else {
		fmt.Printf("format         flat (HNTR v1)\n")
	}
	st := trace.Summarize(r, 0)
	fmt.Printf("entries        %d\n", st.Entries)
	fmt.Printf("instructions   %d (memory ops %.1f%%)\n", st.Instructions(), 100*st.MemFrac())
	fmt.Printf("writes         %.1f%%\n", 100*st.WriteFrac())
	fmt.Printf("distinct lines %d (footprint %.1f KiB at 128B lines)\n",
		st.DistinctLines, float64(st.DistinctLines)*128/1024)
	fmt.Printf("same/next-line %.1f%%\n", 100*st.LocalityFrac())
	fmt.Printf("mean gap       %.2f\n", st.MeanGap())
	checkErr(r)
}

func head(args []string) {
	fs := flag.NewFlagSet("head", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	n := fs.Int("n", 10, "entries to print")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "head: -in is required")
		os.Exit(2)
	}
	r := open(*in)
	for i := 0; i < *n && !r.Exhausted(); i++ {
		e := r.Next()
		if r.Exhausted() {
			break
		}
		op := "R"
		if e.Write {
			op = "W"
		}
		fmt.Printf("%6d: gap=%-4d %s %#x\n", i, e.Gap, op, e.Addr)
	}
	checkErr(r)
}

// seekCheck cross-validates a chunked trace's index: it replays the file
// sequentially and, at evenly spaced sample positions, confirms that an
// independent reader SeekTo()ing there sees the identical entry. A clean
// pass means every chunk decodes, every CRC holds, and the footer index
// agrees with the stream.
func seekCheck(args []string) {
	fs := flag.NewFlagSet("seek-check", flag.ExitOnError)
	in := fs.String("in", "", "chunked trace file (required)")
	samples := fs.Int64("samples", 64, "seek positions to probe")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "seek-check: -in is required")
		os.Exit(2)
	}
	seq, ok := open(*in).(*trace.ChunkFile)
	if !ok {
		fmt.Fprintln(os.Stderr, "seek-check: not a chunked (HNTR2) trace; flat v1 files are not seekable")
		os.Exit(1)
	}
	skr := open(*in).(*trace.ChunkFile)
	total := seq.Len()
	stride := total / *samples
	if stride < 1 {
		stride = 1
	}
	checked := 0
	for i := int64(0); i < total; i++ {
		e := seq.Next()
		if seq.Err() != nil {
			break
		}
		if i%stride == 0 {
			if err := skr.SeekTo(i); err != nil {
				fmt.Fprintf(os.Stderr, "seek-check: SeekTo(%d): %v\n", i, err)
				os.Exit(1)
			}
			if got := skr.Next(); got != e {
				fmt.Fprintf(os.Stderr, "seek-check: entry %d: seek %+v != sequential %+v\n", i, got, e)
				os.Exit(1)
			}
			checked++
		}
	}
	checkErr(seq)
	checkErr(skr)
	fmt.Printf("ok: %d entries, %d seek probes consistent\n", total, checked)
}

func nocrec(args []string) {
	fs := flag.NewFlagSet("nocrec", flag.ExitOnError)
	side := fs.Int("mesh", 4, "mesh side length (side x side routers)")
	rate := fs.Float64("rate", 0.06, "injection rate in packets/node/cycle")
	packets := fs.Int("packets", 2000, "measured packets")
	ring := fs.Int("ring", 4096, "per-router ring capacity in records")
	macroOnly := fs.Bool("macro", false, "capture only packet life-cycle events (no VC/SA/credit detail)")
	seed := fs.Int64("seed", 42, "traffic seed")
	out := fs.String("out", "", "output flit-trace file (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "nocrec: -out is required")
		os.Exit(2)
	}
	m := topology.NewMesh(*side, *side)
	net, err := noc.New(noc.Config{
		Topo:           m,
		Routing:        routing.NewXY(m),
		Routers:        []noc.RouterConfig{{VCs: 3, BufDepth: 5}},
		FlitWidthBits:  192,
		WatchdogCycles: 100000,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ft := noc.NewNetworkFlitTracer(net, noc.FlitTracerConfig{PerRouter: *ring, MacroOnly: *macroOnly})
	net.SetTracer(ft)
	if _, err := traffic.Run(net, traffic.RunConfig{
		Pattern:        traffic.UniformRandom{N: m.NumTerminals()},
		Process:        traffic.Bernoulli{P: *rate},
		DataFlits:      6,
		WarmupPackets:  *packets / 10,
		MeasurePackets: *packets,
		Seed:           *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	err = ft.WriteBinary(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s (%d overwritten in ring)\n", ft.Len(), *out, ft.Dropped())
}

func openFlitTrace(path string) *noc.FlitTrace {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := noc.ReadFlitTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return tr
}

func nocinfo(args []string) {
	fs := flag.NewFlagSet("nocinfo", flag.ExitOnError)
	in := fs.String("in", "", "flit-trace file (required)")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "nocinfo: -in is required")
		os.Exit(2)
	}
	tr := openFlitTrace(*in)
	fmt.Printf("routers  %d\n", tr.NumRouters)
	fmt.Printf("records  %d\n", len(tr.Records))
	if len(tr.Records) == 0 {
		return
	}
	minCycle, maxCycle := tr.Records[0].Cycle, tr.Records[0].Cycle
	kinds := map[noc.EventKind]int{}
	packets := map[uint64]bool{}
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Cycle < minCycle {
			minCycle = r.Cycle
		}
		if r.Cycle > maxCycle {
			maxCycle = r.Cycle
		}
		kinds[r.Kind]++
		packets[r.Packet] = true
	}
	fmt.Printf("cycles   %d..%d\n", minCycle, maxCycle)
	fmt.Printf("packets  %d distinct\n", len(packets))
	for k := noc.EventKind(0); k < 32; k++ {
		if n, ok := kinds[k]; ok {
			fmt.Printf("  %-12s %d\n", k, n)
		}
	}
}

func nocexport(args []string) {
	fs := flag.NewFlagSet("nocexport", flag.ExitOnError)
	in := fs.String("in", "", "flit-trace file (required)")
	out := fs.String("out", "", "Chrome trace-event JSON output (required)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "nocexport: -in and -out are required")
		os.Exit(2)
	}
	tr := openFlitTrace(*in)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	nEvents, err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocexport: generated trace failed validation:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d records, %d events; open in ui.perfetto.dev)\n",
		*out, len(tr.Records), nEvents)
}
