// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|fig1|fig2|table1|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|dse]
//	            [-scale quick|full] [-out results.md] [-nocache]
//	            [-cachedir ~/.cache/heteronoc] [-cachesize bytes] [-nowarmshare]
//	            [-manifest run.manifest.json] [-obs :6060]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Each experiment prints a markdown report with the regenerated data and
// the headline metrics compared in EXPERIMENTS.md. Every run also writes a
// provenance manifest (config hash, per-experiment result fingerprints,
// run-cache statistics) next to the results; -obs serves live /metrics,
// /healthz and pprof endpoints while the run is in flight.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"heteronoc/internal/experiments"
	"heteronoc/internal/obs"
	"heteronoc/internal/prof"
	"heteronoc/internal/runcache"
)

// defaultCacheDir resolves the persistent cache location following the
// XDG convention; "" (disk tier off) when no home directory is known.
func defaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "heteronoc")
	}
	return ""
}

func main() {
	exp := flag.String("exp", "all", "experiment id, comma list, 'all' (paper), or 'everything' (paper + extensions)")
	scale := flag.String("scale", "quick", "simulation scale: quick or full")
	out := flag.String("out", "", "write markdown to this file instead of stdout")
	figdir := flag.String("figdir", "", "also write each experiment's SVG figures into this directory")
	jsonOut := flag.String("jsonout", "", "also write all metrics as JSON to this file")
	list := flag.Bool("list", false, "list available experiments and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	noCache := flag.Bool("nocache", false, "disable the run cache entirely, memory and disk (every probe re-simulates)")
	cacheDir := flag.String("cachedir", defaultCacheDir(), "persistent run-cache directory ('' or 'none' disables the disk tier)")
	cacheSize := flag.Int64("cachesize", 256<<20, "disk cache byte cap, LRU-evicted (0 = unlimited)")
	noWarmShare := flag.Bool("nowarmshare", false, "disable shared CMP warmups (every run replays its own warmup trace)")
	manifestOut := flag.String("manifest", "", "run-manifest path (default: <out>.manifest.json, or experiments.manifest.json; 'none' disables)")
	obsAddr := flag.String("obs", "", "serve live introspection (/metrics, /healthz, pprof) on this address, e.g. :6060")
	flag.Parse()

	runcache.SetEnabled(!*noCache)
	experiments.SetWarmupSharing(!*noWarmShare)
	if *cacheDir != "" && *cacheDir != "none" && !*noCache {
		if err := runcache.SetDir(*cacheDir); err != nil {
			// The disk tier is an optimization; an unusable directory must
			// not stop a regeneration.
			fmt.Fprintf(os.Stderr, "warning: disk cache disabled: %v\n", err)
		}
		runcache.SetMaxBytes(*cacheSize)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	if *list {
		fmt.Println("paper experiments:")
		for _, r := range experiments.All() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Name)
		}
		fmt.Println("extensions:")
		for _, r := range experiments.Extensions() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Name)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick()
	case "full":
		sc = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var runners []experiments.Runner
	switch *exp {
	case "all":
		runners = experiments.All()
	case "everything":
		runners = experiments.AllWithExtensions()
	default:
		for _, id := range strings.Split(*exp, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	ids := make([]string, len(runners))
	for i, r := range runners {
		ids[i] = r.ID
	}
	runStart := time.Now()
	var completed atomic.Int64
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		runcache.RegisterMetrics(reg)
		reg.RegisterGauge("experiments_total", "experiments requested", nil,
			func() float64 { return float64(len(ids)) })
		reg.RegisterGauge("experiments_completed", "experiments finished so far", nil,
			func() float64 { return float64(completed.Load()) })
		// Progress for the stall watchdog: cache traffic moves on every
		// simulated probe, so hits+misses advances even inside one long
		// experiment.
		srv, err := obs.StartServer(*obsAddr, obs.ServerConfig{
			Metrics: reg.Exposition,
			Progress: func() int64 {
				hit, miss := runcache.Stats()
				return hit + miss + completed.Load()
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "introspection server on http://%s\n", srv.Addr())
	}

	// Interrupts cancel the run cooperatively: every simulation loop
	// observes the context at cycle-batch granularity, so Ctrl-C stops
	// within a batch instead of leaving goroutines mid-flight.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var b strings.Builder
	metrics := map[string]map[string]float64{}
	fingerprints := map[string]string{}
	// rootSpan times each experiment (and, through the context, the cache
	// probe vs execution split inside every runNet). It rides in the
	// manifest's non-canonical section: diagnostics, never identity.
	rootSpan := obs.NewSpan("experiments")
	rootSpan.SetAttr("scale", sc.Name)
	fmt.Fprintf(&b, "# HeteroNoC experiment results (scale: %s)\n\n", sc.Name)
	for _, r := range runners {
		start := time.Now()
		hit0, miss0 := runcache.Stats()
		fmt.Fprintf(os.Stderr, "running %s (%s)...", r.ID, r.Name)
		expSpan := rootSpan.Child(r.ID)
		rep, err := r.Run(obs.ContextWithSpan(ctx, expSpan), sc)
		expSpan.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "\n%s: %v\n", r.ID, err)
			os.Exit(1)
		}
		hit1, miss1 := runcache.Stats()
		fmt.Fprintf(os.Stderr, " done in %.1fs (cache: %d hits, %d misses)\n",
			time.Since(start).Seconds(), hit1-hit0, miss1-miss0)
		b.WriteString(rep.Markdown())
		metrics[rep.ID] = rep.Metrics
		fingerprints[rep.ID] = rep.Fingerprint()
		completed.Add(1)
		if *figdir != "" {
			if err := os.MkdirAll(*figdir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, fig := range rep.Figures {
				path := filepath.Join(*figdir, fig.Name+".svg")
				if err := os.WriteFile(path, []byte(fig.SVG), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
			}
		}
	}

	if hit, miss := runcache.Stats(); hit+miss > 0 {
		fmt.Fprintf(os.Stderr, "run cache: %d hits, %d misses (%d runs reused)\n", hit, miss, hit)
	}
	if dh, dm, de := runcache.DiskStats(); dh+dm > 0 {
		fmt.Fprintf(os.Stderr, "disk cache (%s): %d hits, %d misses, %d evicted\n",
			runcache.Dir(), dh, dm, de)
	}

	if *manifestOut != "none" {
		path := *manifestOut
		if path == "" {
			path = "experiments.manifest.json"
			if *out != "" {
				path = *out + ".manifest.json"
			}
		}
		hit, miss := runcache.Stats()
		dh, dm, de := runcache.DiskStats()
		m := &obs.Manifest{
			Tool:         "experiments",
			ConfigHash:   experiments.ConfigHash(ids, sc),
			Scale:        sc.Name,
			Experiments:  ids,
			Fingerprints: fingerprints,
			RuncacheHits: hit, RuncacheMisses: miss,
			DiskHits: dh, DiskMisses: dm, DiskEvictions: de,
			WallTimeSec: time.Since(runStart).Seconds(),
		}
		rootSpan.End()
		m.Spans = []*obs.Span{rootSpan.Clone()}
		if err := m.WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (run %s)\n", path, m.Hash())
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(metrics, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
