// Command nocserved serves simulation-as-a-service: POST /run takes an
// experiment request (JSON: experiment id, scale, tenant, timeout) and
// returns the regenerated report — markdown, metrics, fingerprint — plus
// per-request cache accounting.
//
// Usage:
//
//	nocserved [-addr :8080] [-workers N] [-queue-per-tenant 4] [-max-queued 64]
//	          [-cachedir ~/.cache/heteronoc] [-cachesize bytes]
//	          [-suspenddir DIR] [-drain-grace 2s] [-suspend-grace 10s]
//	          [-timeout 0] [-chaos spec] [-chaos-seed 1]
//
// Hardening: bounded per-tenant queues with fair dispatch (429 +
// Retry-After on overflow), per-worker panic isolation, request
// cancellation down to the simulator's cycle batches, and graceful
// shutdown that drains short runs and suspends long ones as NOCCKPT01
// checkpoints under -suspenddir; a restarted server resumes them to
// byte-identical artifacts. The -chaos flag arms fault injection (see
// internal/chaos.Parse) for soak testing.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"heteronoc/internal/chaos"
	"heteronoc/internal/runcache"
	"heteronoc/internal/serve"
)

func defaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "heteronoc")
	}
	return ""
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queuePerTenant := flag.Int("queue-per-tenant", 4, "queued jobs allowed per tenant")
	maxQueued := flag.Int("max-queued", 0, "global queued-job cap (0 = 8x workers)")
	timeout := flag.Duration("timeout", 0, "default per-run wall-time cap (0 = none)")
	cacheDir := flag.String("cachedir", defaultCacheDir(), "persistent run-cache directory ('' or 'none' disables the disk tier)")
	cacheSize := flag.Int64("cachesize", 256<<20, "disk cache byte cap, LRU-evicted (0 = unlimited)")
	suspendDir := flag.String("suspenddir", "", "checkpoint directory for suspend-on-shutdown ('' disables)")
	drainGrace := flag.Duration("drain-grace", 2*time.Second, "shutdown: wait this long for runs to finish before suspending")
	suspendGrace := flag.Duration("suspend-grace", 10*time.Second, "shutdown: wait this long for runs to checkpoint before cancelling")
	chaosSpec := flag.String("chaos", "", "fault injection spec, e.g. 'worker.panic=p0.1+panic,disk.load.slow=d50ms' (soak testing)")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos RNG seed")
	flag.Parse()

	if *cacheDir != "" && *cacheDir != "none" {
		if err := runcache.SetDir(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "warning: disk cache disabled: %v\n", err)
		}
		runcache.SetMaxBytes(*cacheSize)
	}

	var ch *chaos.Chaos
	if *chaosSpec != "" {
		var err error
		ch, err = chaos.Parse(*chaosSpec, *chaosSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runcache.SetChaos(ch)
		fmt.Fprintf(os.Stderr, "chaos armed: %v\n", ch.Points())
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueuePerTenant: *queuePerTenant,
		MaxQueued:      *maxQueued,
		DefaultTimeout: *timeout,
		DrainGrace:     *drainGrace,
		SuspendGrace:   *suspendGrace,
		SuspendDir:     *suspendDir,
		Chaos:          ch,
	})
	if n := srv.PendingCheckpoints(); n > 0 {
		fmt.Fprintf(os.Stderr, "%d suspended run(s) pending under %s; identical requests resume them\n",
			n, *suspendDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Hardened listener: header/read/write/idle timeouts bound what a
	// slow or hostile client can hold open. WriteTimeout stays generous —
	// a cold full-scale run takes minutes before its response bytes move.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go hs.Serve(ln)
	fmt.Fprintf(os.Stderr, "nocserved listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "shutting down: draining, then suspending long runs...")

	sdCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+*suspendGrace+30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
	}
	hs.Shutdown(sdCtx)
	if n := srv.PendingCheckpoints(); n > 0 {
		fmt.Fprintf(os.Stderr, "suspended %d run(s) to %s; restart to resume\n", n, *suspendDir)
	}
}
