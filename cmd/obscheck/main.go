// Command obscheck inspects and compares run manifests (see obs.Manifest).
//
// With one manifest it prints the run identity (canonical hash, config
// hash, per-experiment fingerprints). With several it additionally checks
// that they all describe the same run — same canonical form modulo wall
// time — and exits nonzero on any divergence, printing the first field
// that differs. CI uses this to pin manifest determinism: two identical
// cmd/experiments invocations must produce interchangeable manifests.
//
// Usage:
//
//	obscheck -manifests run1.manifest.json[,run2.manifest.json,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"heteronoc/internal/obs"
)

func main() {
	paths := flag.String("manifests", "", "comma-separated manifest files (required)")
	flag.Parse()
	if *paths == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -manifests is required")
		os.Exit(2)
	}
	var names []string
	var ms []*obs.Manifest
	for _, p := range strings.Split(*paths, ",") {
		p = strings.TrimSpace(p)
		m, err := obs.ReadManifest(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		names = append(names, p)
		ms = append(ms, m)
	}

	first := ms[0]
	fmt.Printf("%s: run %s (tool %s, config %s, %d experiments, cache %d/%d, %.1fs)\n",
		names[0], first.Hash(), first.Tool, first.ConfigHash,
		len(first.Experiments), first.RuncacheHits, first.RuncacheMisses, first.WallTimeSec)
	ids := make([]string, 0, len(first.Fingerprints))
	for id := range first.Fingerprints {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %-12s %s\n", id, first.Fingerprints[id])
	}

	ok := true
	for i := 1; i < len(ms); i++ {
		if ms[i].Hash() == first.Hash() {
			fmt.Printf("%s: run %s (identical, %.1fs)\n", names[i], ms[i].Hash(), ms[i].WallTimeSec)
			continue
		}
		ok = false
		fmt.Printf("%s: run %s DIFFERS from %s\n", names[i], ms[i].Hash(), names[0])
		reportDiff(first, ms[i])
	}
	if !ok {
		os.Exit(1)
	}
}

// reportDiff prints the first canonical-form line where the two manifests
// diverge, with one line of context — enough to name the drifting field.
func reportDiff(a, b *obs.Manifest) {
	la := strings.Split(string(a.Canonical()), "\n")
	lb := strings.Split(string(b.Canonical()), "\n")
	for i := 0; i < len(la) || i < len(lb); i++ {
		va, vb := "", ""
		if i < len(la) {
			va = la[i]
		}
		if i < len(lb) {
			vb = lb[i]
		}
		if va != vb {
			fmt.Printf("  first divergence (canonical line %d):\n    - %s\n    + %s\n",
				i+1, strings.TrimSpace(va), strings.TrimSpace(vb))
			return
		}
	}
}
