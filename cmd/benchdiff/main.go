// Command benchdiff compares the two most recent entries of a
// BENCH_noc.json history (the file scripts/bench.sh appends to) and flags
// per-benchmark regressions beyond a threshold. It is an informational
// check by default — regressions are reported on stdout and the exit code
// stays zero so a CI step can surface drift without blocking merges; pass
// -strict to exit nonzero instead (for local pre-push gates).
//
// Compared quantities:
//   - every benchmark's ns_per_op (lower is better)
//   - the scalar summary fields: *_ns_per_op, *_ms, *_pct and
//     cycle_ns_per_router_32x32 (lower is better), warm_regen_speedup,
//     serve_hit_ratio and trace_decode_entries_per_sec (higher is better)
//
// Usage:
//
//	benchdiff [-in BENCH_noc.json] [-threshold 20] [-strict]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// entry is one bench.sh history record. Scalar summary fields vary by
// era, so they are captured generically from the raw object.
type entry struct {
	Commit     string `json:"commit"`
	Date       string `json:"date"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
	scalars map[string]float64
}

// higherBetter reports whether a larger value of the named scalar field is
// an improvement.
func higherBetter(name string) bool {
	switch name {
	case "warm_regen_speedup", "serve_hit_ratio", "trace_decode_entries_per_sec":
		return true
	}
	return false
}

func loadHistory(path string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw []map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("benchdiff: %s is not a history array: %w", path, err)
	}
	out := make([]entry, 0, len(raw))
	for _, obj := range raw {
		var e entry
		e.scalars = map[string]float64{}
		for k, v := range obj {
			switch k {
			case "commit":
				json.Unmarshal(v, &e.Commit)
			case "date":
				json.Unmarshal(v, &e.Date)
			case "benchmarks":
				json.Unmarshal(v, &e.Benchmarks)
			default:
				var f float64
				if err := json.Unmarshal(v, &f); err == nil {
					e.scalars[k] = f
				}
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// diff is one compared quantity across the two entries.
type diff struct {
	name       string
	old, new   float64
	deltaPct   float64 // signed: positive means the value grew
	regression bool
}

func compare(prev, cur entry, threshold float64) []diff {
	var out []diff
	add := func(name string, old, new float64, hb bool) {
		if old <= 0 {
			return
		}
		d := diff{name: name, old: old, new: new, deltaPct: 100 * (new - old) / old}
		if hb {
			d.regression = d.deltaPct < -threshold
		} else {
			d.regression = d.deltaPct > threshold
		}
		out = append(out, d)
	}
	prevNs := map[string]float64{}
	for _, b := range prev.Benchmarks {
		prevNs[b.Name] = b.NsPerOp
	}
	for _, b := range cur.Benchmarks {
		if old, ok := prevNs[b.Name]; ok {
			add(b.Name, old, b.NsPerOp, false)
		}
	}
	names := make([]string, 0, len(cur.scalars))
	for k := range cur.scalars {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		old, ok := prev.scalars[k]
		if !ok {
			continue
		}
		// Overhead percentages can be legitimately near zero and noisy;
		// only the *_pct fields with a real budget elsewhere are skipped
		// from ratio comparison when tiny.
		if strings.HasSuffix(k, "_pct") && old < 1 {
			continue
		}
		add(k, old, cur.scalars[k], higherBetter(k))
	}
	return out
}

func main() {
	in := flag.String("in", "BENCH_noc.json", "bench history file (JSON array, oldest first)")
	threshold := flag.Float64("threshold", 20, "regression threshold in percent")
	strict := flag.Bool("strict", false, "exit nonzero when a regression is flagged")
	flag.Parse()

	hist, err := loadHistory(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(hist) < 2 {
		fmt.Printf("benchdiff: %s has %d entries; nothing to compare\n", *in, len(hist))
		return
	}
	prev, cur := hist[len(hist)-2], hist[len(hist)-1]
	fmt.Printf("benchdiff: %s (%s) vs %s (%s), threshold %.0f%%\n",
		prev.Commit, prev.Date, cur.Commit, cur.Date, *threshold)
	regressions := 0
	for _, d := range compare(prev, cur, *threshold) {
		mark := "  "
		if d.regression {
			mark = "!!"
			regressions++
		}
		fmt.Printf("%s %-42s %14.4g -> %-14.4g %+6.1f%%\n", mark, d.name, d.old, d.new, d.deltaPct)
	}
	if regressions > 0 {
		fmt.Printf("%d regression(s) beyond %.0f%%\n", regressions, *threshold)
		if *strict {
			os.Exit(1)
		}
		return
	}
	fmt.Println("no regressions beyond threshold")
}
