// Command noxsim runs a single network-only simulation and prints the
// measured latency, throughput and power.
//
// Usage:
//
//	noxsim [-layout Baseline|Center+B|Center+BL|Row2_5+B|Row2_5+BL|Diagonal+B|Diagonal+BL]
//	       [-pattern ur|nn|transpose|bitcomp] [-rate 0.02] [-selfsimilar]
//	       [-torus] [-warmup 1000] [-packets 100000] [-seed 42]
//	       [-sweep lo:hi:step] [-csv]
//	       [-obs :6060] [-stride 1000] [-timeseries ts.json] [-manifest run.json]
//	       [-ckptout net.ckpt] [-ckptcheck]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -sweep, the single measurement is replaced by a load sweep and one
// result line per injection rate; -csv emits machine-readable output.
//
// -obs serves live introspection while the simulation runs: /metrics
// (Prometheus text, re-rendered every -stride cycles), /timeseries (the
// sampler's windowed series), /healthz (with a stalled-router dump when
// cycle progress freezes) and net/http/pprof. -timeseries writes the final
// series to a file (.csv by extension, JSON otherwise); -manifest records
// run provenance including a per-rate state fingerprint.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"heteronoc/internal/core"
	"heteronoc/internal/noc"
	"heteronoc/internal/obs"
	"heteronoc/internal/power"
	"heteronoc/internal/prof"
	"heteronoc/internal/stats"
	"heteronoc/internal/traffic"
)

// layoutByName parses the Figure 3 configuration names on the 8x8 mesh.
func layoutByName(name string) (core.Layout, error) {
	return core.LayoutByName(name, 8, 8)
}

func main() {
	layoutName := flag.String("layout", "Diagonal+BL", "network configuration (Figure 3 names)")
	configPath := flag.String("config", "", "JSON layout spec file (overrides -layout; see core.LayoutSpec)")
	patternName := flag.String("pattern", "ur", "traffic pattern: ur, nn, transpose, bitcomp")
	rate := flag.Float64("rate", 0.02, "injection rate in packets/node/cycle")
	selfSim := flag.Bool("selfsimilar", false, "use the self-similar (Pareto on/off) process")
	torus := flag.Bool("torus", false, "run on an 8x8 torus instead of a mesh")
	warmup := flag.Int("warmup", 1000, "warmup packets")
	packets := flag.Int("packets", 100000, "measured packets")
	seed := flag.Int64("seed", 42, "RNG seed")
	sweep := flag.String("sweep", "", "sweep injection rates lo:hi:step instead of a single -rate run")
	csvOut := flag.Bool("csv", false, "emit CSV (rate,latency_cycles,latency_ns,accepted,saturated,power_w,combine)")
	show := flag.Bool("show", false, "print the router placement map before running")
	obsAddr := flag.String("obs", "", "serve live introspection (/metrics, /timeseries, /healthz, pprof) on this address")
	stride := flag.Int64("stride", 1000, "sampling window in cycles for -obs/-timeseries")
	tsOut := flag.String("timeseries", "", "write the sampled time series to this file (.csv or JSON)")
	manifestOut := flag.String("manifest", "", "write a run-provenance manifest to this file")
	ckptOut := flag.String("ckptout", "", "write a checkpoint of the final network state to this file (last sweep rate wins)")
	ckptCheck := flag.Bool("ckptcheck", false, "after each run, snapshot the network, restore into a fresh one and verify bit-identical state")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err2 := prof.Start(*cpuProfile, *memProfile)
	if err2 != nil {
		fmt.Fprintln(os.Stderr, err2)
		os.Exit(2)
	}
	defer stopProf()

	var l core.Layout
	var err error
	if *configPath != "" {
		data, rerr := os.ReadFile(*configPath)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(2)
		}
		l, err = core.ParseLayoutJSON(data)
	} else {
		l, err = layoutByName(*layoutName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *torus && !l.Mesh.Wrap() {
		l = l.OnTorus()
	}
	var pattern traffic.Pattern
	switch *patternName {
	case "ur":
		pattern = traffic.UniformRandom{N: l.Mesh.NumTerminals()}
	case "nn":
		pattern = traffic.NearestNeighbor{Grid: l.Mesh}
	case "transpose":
		pattern = traffic.Transpose{Grid: l.Mesh}
	case "bitcomp":
		pattern = traffic.BitComplement{N: l.Mesh.NumTerminals()}
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *patternName)
		os.Exit(2)
	}
	if *show {
		fmt.Print(l.Render())
		fmt.Println()
	}
	rates := []float64{*rate}
	if *sweep != "" {
		var lo, hi, step float64
		if _, err := fmt.Sscanf(*sweep, "%f:%f:%f", &lo, &hi, &step); err != nil || step <= 0 || hi < lo {
			fmt.Fprintf(os.Stderr, "bad -sweep %q (want lo:hi:step)\n", *sweep)
			os.Exit(2)
		}
		rates = nil
		for v := lo; v <= hi+step/2; v += step {
			rates = append(rates, v)
		}
	}
	var ob *obsState
	if *obsAddr != "" || *tsOut != "" {
		ob = &obsState{stride: *stride, tsPath: *tsOut}
		if *stride <= 0 {
			ob.stride = 1000
		}
		if *obsAddr != "" {
			srv, err := obs.StartServer(*obsAddr, obs.ServerConfig{
				Metrics:    ob.snap.Metrics,
				TimeSeries: ob.snap.TimeSeries,
				Progress:   ob.snap.Cycle,
				StallDump: func() string {
					if net := ob.net.Load(); net != nil {
						return net.StalledDump(4)
					}
					return ""
				},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "introspection server on http://%s\n", srv.Addr())
		}
	}
	if *csvOut {
		fmt.Println("rate,latency_cycles,latency_ns,accepted,saturated,power_w,combine")
	}
	start := time.Now()
	fingerprints := map[string]string{}
	for _, rt := range rates {
		fp := runOnce(l, pattern, rt, *selfSim, *warmup, *packets, *seed, *csvOut || *sweep != "", *csvOut, ob, *ckptOut, *ckptCheck)
		fingerprints[fmt.Sprintf("rate=%.4f", rt)] = fp
	}
	if *manifestOut != "" {
		m := &obs.Manifest{
			Tool:       "noxsim",
			ConfigHash: configHash(l, *patternName, *selfSim, *warmup, *packets, *seed, rates),
			Layout:     l.Name,
			Seeds:      []int64{*seed},
			Fingerprints: fingerprints,
			WallTimeSec:  time.Since(start).Seconds(),
		}
		if err := m.WriteFile(*manifestOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (run %s)\n", *manifestOut, m.Hash())
	}
}

// obsState is the shared plumbing between the sweep loop and the live
// introspection server: the latest network (for stall dumps) and the cached
// exposition snapshot the HTTP goroutine reads.
type obsState struct {
	snap   obs.Snapshot
	net    atomic.Pointer[noc.Network]
	stride int64
	tsPath string
}

// configHash content-addresses a noxsim invocation.
func configHash(l core.Layout, pattern string, selfSim bool, warmup, packets int, seed int64, rates []float64) string {
	parts := []string{"noxsim/v1", l.Name, l.Mesh.Name(), pattern,
		fmt.Sprint(selfSim), fmt.Sprint(warmup), fmt.Sprint(packets), fmt.Sprint(seed)}
	for _, r := range rates {
		parts = append(parts, fmt.Sprintf("%.6f", r))
	}
	return fmt.Sprintf("%016x", obs.HashStrings(parts...))
}

// runOnce measures one operating point, prints it, and returns the
// network-state fingerprint of the run.
func runOnce(l core.Layout, pattern traffic.Pattern, rate float64, selfSim bool,
	warmup, packets int, seed int64, brief, csvOut bool, ob *obsState,
	ckptOut string, ckptCheck bool) string {
	net, err := l.Network()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if ob != nil {
		ob.net.Store(net)
		reg := obs.NewRegistry()
		net.RegisterMetrics(reg)
		sampler := noc.NewSampler(net, noc.SampleConfig{Stride: ob.stride, PerRouter: true})
		net.SetOnCycle(func(c int64) {
			sampler.Tick(c)
			if c%ob.stride == 0 {
				// Render the exposition on the simulation thread; the HTTP
				// goroutine only ever reads the snapshot's cached bytes.
				ob.snap.Update(c, reg, sampler.Series())
			}
		})
		defer func() {
			if ob.tsPath == "" {
				return
			}
			f, err := os.Create(ob.tsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			if strings.HasSuffix(ob.tsPath, ".csv") {
				err = sampler.Series().WriteCSV(f)
			} else {
				err = sampler.Series().WriteJSON(f)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d samples)\n", ob.tsPath, sampler.Series().Len())
		}()
	}
	var proc traffic.Process
	if selfSim {
		proc = traffic.NewSelfSimilar(l.Mesh.NumTerminals(), rate)
	} else {
		proc = traffic.Bernoulli{P: rate}
	}
	res, err := traffic.Run(net, traffic.RunConfig{
		Pattern:        pattern,
		Process:        proc,
		DataFlits:      l.DataPacketFlits(),
		WarmupPackets:  warmup,
		MeasurePackets: packets,
		Seed:           seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fp := fmt.Sprintf("%016x", net.Fingerprint())
	if ckptOut != "" || ckptCheck {
		snap, err := net.Snapshot(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if ckptCheck {
			fresh, err := l.Network()
			if err == nil {
				err = fresh.RestoreSnapshot(snap, nil)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint self-check FAILED: %v\n", err)
				os.Exit(1)
			}
			if got := fmt.Sprintf("%016x", fresh.Fingerprint()); got != fp {
				fmt.Fprintf(os.Stderr, "checkpoint self-check FAILED: restored fingerprint %s, want %s\n", got, fp)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "checkpoint self-check OK (%d bytes, fingerprint %s)\n", len(snap), fp)
		}
		if ckptOut != "" {
			if err := os.WriteFile(ckptOut, snap, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", ckptOut, len(snap))
		}
	}
	pw := power.Network(power.NewModel(), l, res.Activity)
	if csvOut {
		fmt.Printf("%.4f,%.2f,%.2f,%.4f,%v,%.2f,%.3f\n",
			rate, res.AvgLatency, res.AvgLatency/l.FreqGHz(), res.AcceptedRate, res.Saturated, pw.Total(), res.CombineRate)
		return fp
	}
	if brief {
		fmt.Printf("rate=%.4f latency=%.1fcyc (%.1fns) accepted=%.4f sat=%v power=%.1fW\n",
			rate, res.AvgLatency, res.AvgLatency/l.FreqGHz(), res.AcceptedRate, res.Saturated, pw.Total())
		return fp
	}
	fmt.Printf("layout         %s (%s, %.2f GHz, %d-flit data packets)\n",
		l.Name, l.Mesh.Name(), l.FreqGHz(), l.DataPacketFlits())
	fmt.Printf("traffic        %s x %s\n", pattern.Name(), proc.Name())
	fmt.Printf("avg latency    %.2f cycles = %.2f ns\n", res.AvgLatency, res.AvgLatency/l.FreqGHz())
	fmt.Printf("  queuing      %.2f cycles\n", res.QueuingLatency)
	fmt.Printf("  blocking     %.2f cycles\n", res.BlockingLatency)
	fmt.Printf("  transfer     %.2f cycles\n", res.TransferLatency)
	fmt.Printf("avg hops       %.2f\n", res.AvgHops)
	fmt.Printf("tail latency   p50 %.0f / p95 %.0f / p99 %.0f cycles\n",
		res.P50, res.P95, res.P99)
	fmt.Printf("accepted       %.4f packets/node/cycle (offered %.4f)\n", res.AcceptedRate, res.OfferedRate)
	fmt.Printf("saturated      %v\n", res.Saturated)
	fmt.Printf("combining      %.1f%% of busy wide-link cycles\n", 100*res.CombineRate)
	fmt.Printf("network power  %.2f W (buffers %.2f, xbar %.2f, arb %.2f, links %.2f)\n",
		pw.Total(), pw.Buffers, pw.Xbar, pw.Arbiters, pw.Links)
	var util stats.Summary
	for _, a := range res.Activity {
		util.Add(a.LinkUtil)
	}
	fmt.Printf("link util      mean %.1f%%, max %.1f%%\n", 100*util.Mean(), 100*util.Max())
	return fp
}
