// Command noxsim runs a single network-only simulation and prints the
// measured latency, throughput and power.
//
// Usage:
//
//	noxsim [-layout Baseline|Center+B|Center+BL|Row2_5+B|Row2_5+BL|Diagonal+B|Diagonal+BL]
//	       [-pattern ur|nn|transpose|bitcomp] [-rate 0.02] [-selfsimilar]
//	       [-torus] [-warmup 1000] [-packets 100000] [-seed 42]
//	       [-sweep lo:hi:step] [-csv]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -sweep, the single measurement is replaced by a load sweep and one
// result line per injection rate; -csv emits machine-readable output.
package main

import (
	"flag"
	"fmt"
	"os"

	"heteronoc/internal/core"
	"heteronoc/internal/power"
	"heteronoc/internal/prof"
	"heteronoc/internal/stats"
	"heteronoc/internal/traffic"
)

// layoutByName parses the Figure 3 configuration names on the 8x8 mesh.
func layoutByName(name string) (core.Layout, error) {
	return core.LayoutByName(name, 8, 8)
}

func main() {
	layoutName := flag.String("layout", "Diagonal+BL", "network configuration (Figure 3 names)")
	configPath := flag.String("config", "", "JSON layout spec file (overrides -layout; see core.LayoutSpec)")
	patternName := flag.String("pattern", "ur", "traffic pattern: ur, nn, transpose, bitcomp")
	rate := flag.Float64("rate", 0.02, "injection rate in packets/node/cycle")
	selfSim := flag.Bool("selfsimilar", false, "use the self-similar (Pareto on/off) process")
	torus := flag.Bool("torus", false, "run on an 8x8 torus instead of a mesh")
	warmup := flag.Int("warmup", 1000, "warmup packets")
	packets := flag.Int("packets", 100000, "measured packets")
	seed := flag.Int64("seed", 42, "RNG seed")
	sweep := flag.String("sweep", "", "sweep injection rates lo:hi:step instead of a single -rate run")
	csvOut := flag.Bool("csv", false, "emit CSV (rate,latency_cycles,latency_ns,accepted,saturated,power_w,combine)")
	show := flag.Bool("show", false, "print the router placement map before running")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err2 := prof.Start(*cpuProfile, *memProfile)
	if err2 != nil {
		fmt.Fprintln(os.Stderr, err2)
		os.Exit(2)
	}
	defer stopProf()

	var l core.Layout
	var err error
	if *configPath != "" {
		data, rerr := os.ReadFile(*configPath)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(2)
		}
		l, err = core.ParseLayoutJSON(data)
	} else {
		l, err = layoutByName(*layoutName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *torus && !l.Mesh.Wrap() {
		l = l.OnTorus()
	}
	var pattern traffic.Pattern
	switch *patternName {
	case "ur":
		pattern = traffic.UniformRandom{N: l.Mesh.NumTerminals()}
	case "nn":
		pattern = traffic.NearestNeighbor{Grid: l.Mesh}
	case "transpose":
		pattern = traffic.Transpose{Grid: l.Mesh}
	case "bitcomp":
		pattern = traffic.BitComplement{N: l.Mesh.NumTerminals()}
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *patternName)
		os.Exit(2)
	}
	if *show {
		fmt.Print(l.Render())
		fmt.Println()
	}
	rates := []float64{*rate}
	if *sweep != "" {
		var lo, hi, step float64
		if _, err := fmt.Sscanf(*sweep, "%f:%f:%f", &lo, &hi, &step); err != nil || step <= 0 || hi < lo {
			fmt.Fprintf(os.Stderr, "bad -sweep %q (want lo:hi:step)\n", *sweep)
			os.Exit(2)
		}
		rates = nil
		for v := lo; v <= hi+step/2; v += step {
			rates = append(rates, v)
		}
	}
	if *csvOut {
		fmt.Println("rate,latency_cycles,latency_ns,accepted,saturated,power_w,combine")
	}
	for _, rt := range rates {
		runOnce(l, pattern, rt, *selfSim, *warmup, *packets, *seed, *csvOut || *sweep != "", *csvOut)
	}
}

// runOnce measures one operating point and prints it.
func runOnce(l core.Layout, pattern traffic.Pattern, rate float64, selfSim bool,
	warmup, packets int, seed int64, brief, csvOut bool) {
	net, err := l.Network()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var proc traffic.Process
	if selfSim {
		proc = traffic.NewSelfSimilar(l.Mesh.NumTerminals(), rate)
	} else {
		proc = traffic.Bernoulli{P: rate}
	}
	res, err := traffic.Run(net, traffic.RunConfig{
		Pattern:        pattern,
		Process:        proc,
		DataFlits:      l.DataPacketFlits(),
		WarmupPackets:  warmup,
		MeasurePackets: packets,
		Seed:           seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pw := power.Network(power.NewModel(), l, res.Activity)
	if csvOut {
		fmt.Printf("%.4f,%.2f,%.2f,%.4f,%v,%.2f,%.3f\n",
			rate, res.AvgLatency, res.AvgLatency/l.FreqGHz(), res.AcceptedRate, res.Saturated, pw.Total(), res.CombineRate)
		return
	}
	if brief {
		fmt.Printf("rate=%.4f latency=%.1fcyc (%.1fns) accepted=%.4f sat=%v power=%.1fW\n",
			rate, res.AvgLatency, res.AvgLatency/l.FreqGHz(), res.AcceptedRate, res.Saturated, pw.Total())
		return
	}
	fmt.Printf("layout         %s (%s, %.2f GHz, %d-flit data packets)\n",
		l.Name, l.Mesh.Name(), l.FreqGHz(), l.DataPacketFlits())
	fmt.Printf("traffic        %s x %s\n", pattern.Name(), proc.Name())
	fmt.Printf("avg latency    %.2f cycles = %.2f ns\n", res.AvgLatency, res.AvgLatency/l.FreqGHz())
	fmt.Printf("  queuing      %.2f cycles\n", res.QueuingLatency)
	fmt.Printf("  blocking     %.2f cycles\n", res.BlockingLatency)
	fmt.Printf("  transfer     %.2f cycles\n", res.TransferLatency)
	fmt.Printf("avg hops       %.2f\n", res.AvgHops)
	fmt.Printf("tail latency   p50 %.0f / p95 %.0f / p99 %.0f cycles\n",
		res.P50, res.P95, res.P99)
	fmt.Printf("accepted       %.4f packets/node/cycle (offered %.4f)\n", res.AcceptedRate, res.OfferedRate)
	fmt.Printf("saturated      %v\n", res.Saturated)
	fmt.Printf("combining      %.1f%% of busy wide-link cycles\n", 100*res.CombineRate)
	fmt.Printf("network power  %.2f W (buffers %.2f, xbar %.2f, arb %.2f, links %.2f)\n",
		pw.Total(), pw.Buffers, pw.Xbar, pw.Arbiters, pw.Links)
	var util stats.Summary
	for _, a := range res.Activity {
		util.Add(a.LinkUtil)
	}
	fmt.Printf("link util      mean %.1f%%, max %.1f%%\n", 100*util.Mean(), 100*util.Max())
}
