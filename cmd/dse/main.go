// Command dse runs the 4x4 design-space exploration of Section 2
// (footnote 4): it enumerates big-router placements, scores them with short
// uniform-random probes, and reports the best layouts along with where the
// diagonal placement ranks.
//
// Usage:
//
//	dse [-big 4] [-max 100] [-packets 1500] [-rate 0.06] [-bl] [-workload hotspot]
package main

import (
	"flag"
	"fmt"
	"os"

	"heteronoc/internal/dse"
)

func main() {
	bigCount := flag.Int("big", 4, "number of big routers to place on the 4x4 mesh")
	maxCand := flag.Int("max", 100, "maximum candidates to score (0 = all, symmetry-reduced)")
	packets := flag.Int("packets", 1500, "measured packets per probe")
	rate := flag.Float64("rate", 0.06, "probe injection rate")
	bl := flag.Bool("bl", true, "evaluate +BL (links redistributed) instead of +B")
	anneal := flag.Int("anneal", 0, "instead of the 4x4 sweep, run N simulated-annealing steps on the 8x8/16-big space")
	workload := flag.String("workload", "", "probe traffic shape: uniform (default), hotspot, or mc-incast")
	flag.Parse()

	if *anneal > 0 {
		res, err := dse.Anneal(dse.AnnealConfig{
			Eval: dse.EvalConfig{
				W: 8, H: 8, BigCount: 16, LinkRedist: *bl,
				InjectionRate: *rate, Packets: *packets, Seed: 7,
				Workload: *workload,
			},
			Steps: *anneal,
			Seed:  11,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("8x8 anneal over %d steps (%d accepted)\n", res.Steps, res.Accepted)
		fmt.Printf("random start: %.1f cycles\n", res.Initial.AvgLatency)
		fmt.Printf("best found:   %.1f cycles at %v\n", res.Best.AvgLatency, res.Best.Big)
		return
	}

	fmt.Printf("placements of %d big routers on 4x4: %s total (paper footnote 4)\n",
		*bigCount, dse.Combinations(16, *bigCount))
	res, err := dse.Explore(dse.EvalConfig{
		W: 4, H: 4,
		BigCount:       *bigCount,
		LinkRedist:     *bl,
		InjectionRate:  *rate,
		Packets:        *packets,
		ReduceSymmetry: true,
		MaxCandidates:  *maxCand,
		Seed:           7,
		Workload:       *workload,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("scored %d symmetry-reduced candidates at rate %.3f\n\n", len(res), *rate)
	show := 10
	if len(res) < show {
		show = len(res)
	}
	fmt.Println("rank  avg-latency  saturated  big routers")
	for i := 0; i < show; i++ {
		c := res[i]
		fmt.Printf("%4d  %9.1f    %-9v %v\n", i+1, c.AvgLatency, c.Saturated, c.Big)
	}
	if rank, ok := dse.DiagonalScore(res, 4, 4); ok {
		fmt.Printf("\ndiagonal placement ranks #%d of %d\n", rank, len(res))
	}
}
