// Command dse explores the big-router design space.
//
// Three modes:
//
//   - Default: the 4x4 exhaustive sweep of Section 2 (footnote 4) —
//     enumerate placements, score each with a short uniform-random probe,
//     report the best layouts and where the diagonal ranks.
//   - -anneal N: simulated annealing on the 8x8/16-big space.
//   - -search: the NSGA-II multi-objective search over {latency, power,
//     area} with a resumable frontier file (-frontier). Killed searches
//     resume exactly; finished searches extend when -generations grows.
//     With -server, candidate batches are POSTed to a nocserved instance
//     whose shared cache dedupes evaluations across concurrent searches.
//
// Usage:
//
//	dse [-big 4] [-max 100] [-packets 1500] [-rate 0.06] [-bl] [-workload hotspot]
//	dse -anneal 400
//	dse -search -w 8 -h 8 -minbig 12 -maxbig 16 -pop 24 -generations 20 \
//	    -budget 900 -frontier search.hndse [-server http://host:8080]
//
// Exit status: 0 on success; 1 on error, including the saturation case —
// if every evaluated placement saturates at the probe load, the search
// cannot rank anything and the command says so instead of printing an
// empty front.
package main

import (
	"flag"
	"fmt"
	"os"

	"heteronoc/internal/dse"
	"heteronoc/internal/runcache"
	"heteronoc/internal/serve"
)

func main() {
	bigCount := flag.Int("big", 4, "number of big routers (4x4 sweep: fixed; search: default for -minbig/-maxbig)")
	maxCand := flag.Int("max", 100, "maximum candidates to score (0 = all, symmetry-reduced)")
	packets := flag.Int("packets", 1500, "measured packets per probe")
	rate := flag.Float64("rate", 0.06, "probe injection rate")
	bl := flag.Bool("bl", true, "evaluate +BL (links redistributed) instead of +B")
	anneal := flag.Int("anneal", 0, "instead of the 4x4 sweep, run N simulated-annealing steps on the 8x8/16-big space")
	workload := flag.String("workload", "", "probe traffic shape: uniform (default), hotspot, mc-incast, or mixed")

	search := flag.Bool("search", false, "run the multi-objective evolutionary search instead of the exhaustive sweep")
	w := flag.Int("w", 4, "search: mesh width")
	h := flag.Int("h", 4, "search: mesh height")
	minBig := flag.Int("minbig", 0, "search: minimum big routers per candidate (default -big)")
	maxBig := flag.Int("maxbig", 0, "search: maximum big routers per candidate (default -big)")
	pop := flag.Int("pop", 24, "search: population size")
	generations := flag.Int("generations", 20, "search: generations to run (cumulative across resumes)")
	budget := flag.Int("budget", 0, "search: cap on cumulative candidate evaluations (0 = unlimited)")
	seed := flag.Int64("seed", 1, "search: RNG seed")
	frontier := flag.String("frontier", "", "search: HNDSE1 frontier file to persist/resume (empty = in-memory only)")
	server := flag.String("server", "", "search: nocserved base URL to evaluate batches remotely (empty = local)")
	cacheDir := flag.String("cachedir", "", "persistent run cache directory shared across processes")
	flag.Parse()

	if *cacheDir != "" {
		if err := runcache.SetDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *search {
		runSearch(searchOpts{
			w: *w, h: *h, minBig: *minBig, maxBig: *maxBig,
			big: *bigCount, pop: *pop, generations: *generations,
			budget: *budget, seed: *seed, frontier: *frontier,
			server: *server, bl: *bl, rate: *rate, packets: *packets,
			workload: *workload,
		})
		return
	}

	if *anneal > 0 {
		res, err := dse.Anneal(dse.AnnealConfig{
			Eval: dse.EvalConfig{
				W: 8, H: 8, BigCount: 16, LinkRedist: *bl,
				InjectionRate: *rate, Packets: *packets, Seed: 7,
				Workload: *workload,
			},
			Steps: *anneal,
			Seed:  11,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("8x8 anneal over %d steps (%d accepted)\n", res.Steps, res.Accepted)
		fmt.Printf("random start: %.1f cycles\n", res.Initial.AvgLatency)
		fmt.Printf("best found:   %.1f cycles at %v\n", res.Best.AvgLatency, res.Best.Big)
		return
	}

	fmt.Printf("placements of %d big routers on 4x4: %s total (paper footnote 4)\n",
		*bigCount, dse.Combinations(16, *bigCount))
	res, err := dse.Explore(dse.EvalConfig{
		W: 4, H: 4,
		BigCount:       *bigCount,
		LinkRedist:     *bl,
		InjectionRate:  *rate,
		Packets:        *packets,
		ReduceSymmetry: true,
		MaxCandidates:  *maxCand,
		Seed:           7,
		Workload:       *workload,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if allSaturated(res) {
		fmt.Fprintf(os.Stderr, "dse: every one of the %d scored placements saturated at rate %.3f — "+
			"the probe load exceeds what any placement can carry; lower -rate\n", len(res), *rate)
		os.Exit(1)
	}
	fmt.Printf("scored %d symmetry-reduced candidates at rate %.3f\n\n", len(res), *rate)
	show := 10
	if len(res) < show {
		show = len(res)
	}
	fmt.Println("rank  avg-latency  saturated  big routers")
	for i := 0; i < show; i++ {
		c := res[i]
		fmt.Printf("%4d  %9.1f    %-9v %v\n", i+1, c.AvgLatency, c.Saturated, c.Big)
	}
	if rank, ok := dse.DiagonalScore(res, 4, 4); ok {
		fmt.Printf("\ndiagonal placement ranks #%d of %d\n", rank, len(res))
	}
}

func allSaturated(cands []dse.Candidate) bool {
	for _, c := range cands {
		if !c.Saturated {
			return false
		}
	}
	return len(cands) > 0
}

type searchOpts struct {
	w, h, minBig, maxBig, big, pop, generations, budget int
	seed                                                int64
	frontier, server, workload                          string
	bl                                                  bool
	rate                                                float64
	packets                                             int
}

func runSearch(o searchOpts) {
	if o.minBig == 0 {
		o.minBig = o.big
	}
	if o.maxBig == 0 {
		o.maxBig = o.big
	}
	cfg := dse.SearchConfig{
		Eval: dse.EvalConfig{
			W: o.w, H: o.h, LinkRedist: o.bl,
			InjectionRate: o.rate, Packets: o.packets, Seed: 7,
			Workload: o.workload,
		},
		MinBig: o.minBig, MaxBig: o.maxBig,
		PopSize: o.pop, Generations: o.generations, EvalBudget: o.budget,
		Seed:         o.seed,
		FrontierPath: o.frontier,
	}
	var remote *serve.RemoteEvaluator
	if o.server != "" {
		remote = &serve.RemoteEvaluator{
			Client: &serve.Client{BaseURL: o.server},
			Tenant: fmt.Sprintf("dse-seed%d", o.seed),
		}
		cfg.Evaluator = remote
	}

	execs0 := runcache.Execs()
	res, err := dse.Search(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if res.AllSaturated {
		fmt.Fprintf(os.Stderr, "dse: search found no feasible point — all %d evaluated placements "+
			"saturated at rate %.3f; the probe load exceeds what any placement in this space can "+
			"carry, so the Pareto front is empty. Lower -rate and rerun.\n", res.ArchiveSize, o.rate)
		os.Exit(1)
	}

	mode := "local"
	if remote != nil {
		mode = fmt.Sprintf("remote via %s (%d batches, %d answered warm)",
			o.server, remote.Batches.Load(), remote.WarmBatches.Load())
	}
	resumed := ""
	if res.Resumed {
		resumed = " (resumed)"
	}
	fmt.Printf("%dx%d search%s: %d generations, %d evaluations (%d archive hits), archive %d, evaluation %s\n",
		o.w, o.h, resumed, res.Generations, res.Evals, res.ArchiveHits, res.ArchiveSize, mode)
	if remote == nil {
		fmt.Printf("simulations this process: %d (rest served by cache/archive)\n", runcache.Execs()-execs0)
	}
	fmt.Printf("\nPareto front (%d points, latency-ascending):\n", len(res.Front))
	fmt.Println("   latency-ns   power-w   area-mm2  big routers")
	show := len(res.Front)
	if show > 12 {
		show = 12
	}
	for i := 0; i < show; i++ {
		c := res.Front[i]
		fmt.Printf("  %10.3f  %8.3f  %8.3f  %v\n", c.LatencyNS, c.PowerW, c.AreaMM2, c.Big)
	}
	if show < len(res.Front) {
		fmt.Printf("  ... %d more\n", len(res.Front)-show)
	}
	if o.frontier != "" {
		fmt.Printf("\nfrontier saved to %s — rerun with a larger -generations to extend\n", o.frontier)
	}
}
