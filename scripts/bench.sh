#!/bin/sh
# bench.sh — run the simulator micro-benchmarks and record the results.
#
# Runs every benchmark in the repo root (BenchmarkNetworkCycle,
# BenchmarkHeteroNetworkCycle, BenchmarkCMPCycle, ...) with -benchmem and
# -count 5, appends the raw `go test` output (under a dated header) to
# BENCH_noc.txt, and appends the per-benchmark medians as one dated entry
# to the BENCH_noc.json history — so the performance trajectory across
# commits stays visible instead of each run overwriting the last. The
# fault-injection sweep (BenchmarkFaultSweep: the full degradation
# experiment at bench scale) is additionally surfaced as a per-entry
# "fault_sweep_ns_per_op" field so fault-stack regressions are one jq
# expression away (`jq '.[-1].fault_sweep_ns_per_op' BENCH_noc.json`).
#
# The checkpoint stack is surfaced the same way: "ckpt_restore_ns_per_op"
# (BenchmarkCheckpointRestore: deserializing a mid-run network state) and
# "warm_regen_speedup" (a cold-vs-warm double run of cmd/experiments in
# fresh processes sharing one initially-empty disk cache; the script fails
# if the two outputs are not byte-identical).
#
# Mesh scaling is tracked by two per-entry fields:
# "table_build_1024_ns_per_op" (BenchmarkTableBuild1024: full fault-free
# route-table construction for a 32x32 mesh) and "cycle_ns_per_router_32x32"
# (BenchmarkNetworkCycle32x32 divided by 1024 routers) — the pair that must
# stay flat-ish as the engine scales, not just the 8x8 numbers.
#
# The run server is measured end to end: one nocserved instance on a
# loopback port takes a small nocload round (cold then warm repeats) and
# the SLO report's latency percentiles and cache hit ratio land as
# per-entry "serve_p50_ms", "serve_p99_ms" and "serve_hit_ratio" fields —
# the service-level numbers that admission control and the warm cache
# path are supposed to keep healthy.
#
# The streaming trace pipeline lands as two per-entry fields:
# "trace_decode_entries_per_sec" (BenchmarkTraceDecode/batch: bulk HNTR2
# chunk decode throughput — the benchmark decodes 65536 entries per op,
# so the rate is 65536e9/ns_per_op) and "warm_restore_seek_ns_per_op"
# (BenchmarkWarmRestoreSeek: restoring a CMP warm checkpoint whose trace
# readers are file-backed chunked traces, repositioned by SeekTo instead
# of entry replay).
#
# The design-space search lands as "dse_evals_per_sec" (effective
# candidate-evaluation throughput of BenchmarkDSEGeneration, cache answers
# included) and "dse_cache_hit_ratio" (the fraction of evaluations answered
# without a simulation — the cross-run dedup rate the search banks on).
#
# The observability benches (BenchmarkNetworkCycleTraced/-Sampled) are
# folded into two per-entry overhead fields: "tracer_overhead_pct" (cost of
# a full-detail flit tracer vs the bare kernel) and "metrics_overhead_pct"
# (cost of registry + attached time-series sampler), so obs-layer
# regressions are as visible as kernel regressions.
#
# The always-on latency attribution path is bounded the same way:
# "attribution_overhead_pct" compares BenchmarkNetworkCycle (attribution
# on, its default) against BenchmarkNetworkCycleNoAttr (counters off) —
# the budget is 5%, checked in smoke mode.
#
# BENCH_noc.json is a JSON array, oldest entry first, one compact object
# per line. A legacy single-object file (the pre-history format) is folded
# in as the first entry on the next run.
#
# Usage: scripts/bench.sh [output.json]    (default BENCH_noc.json)
#        scripts/bench.sh -smoke
#
# -smoke is the CI mode: it runs only the kernel + observability cycle
# benchmarks (short, fixed iteration count), prints the two overhead
# percentages, fails if sampling overhead exceeds 25% or tracing overhead
# exceeds 200% (generous bounds — CI machines are noisy; trend numbers come
# from full runs), and records nothing.
set -eu
cd "$(dirname "$0")/.."

smoke=0
if [ "${1:-}" = "-smoke" ]; then
	smoke=1
	shift
fi

out=${1:-BENCH_noc.json}
raw=${out%.json}.txt

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

run=$(mktemp)
trap 'rm -f "$run"' EXIT

if [ "$smoke" = 1 ]; then
	go test -run '^$' \
		-bench 'BenchmarkNetworkCycle$|BenchmarkNetworkCycleNoAttr$|BenchmarkNetworkCycleTraced$|BenchmarkNetworkCycleSampled$|BenchmarkCMPCycle$' \
		-benchtime 2000x -count 5 -benchmem . | tee "$run"
	awk '
	/^BenchmarkNetworkCycle-|^BenchmarkNetworkCycle /        { base = base " " $3 }
	/^BenchmarkNetworkCycleNoAttr/                           { na = na " " $3 }
	/^BenchmarkNetworkCycleTraced/                           { tr = tr " " $3 }
	/^BenchmarkNetworkCycleSampled/                          { sm = sm " " $3 }
	function median(s,   v, m, i, j, t) {
		m = split(s, v, " ")
		for (i = 2; i <= m; i++)
			for (j = i; j > 1 && v[j - 1] + 0 > v[j] + 0; j--) {
				t = v[j]; v[j] = v[j - 1]; v[j - 1] = t
			}
		return (m % 2) ? v[(m + 1) / 2] : (v[m / 2] + v[m / 2 + 1]) / 2
	}
	END {
		b = median(base)
		if (b <= 0) { print "smoke: no baseline benchmark output" > "/dev/stderr"; exit 1 }
		trp = 100 * (median(tr) - b) / b
		smp = 100 * (median(sm) - b) / b
		nab = median(na)
		atp = (nab > 0) ? 100 * (b - nab) / nab : 0
		printf "tracer_overhead_pct       %.1f (bound 200)\n", trp
		printf "metrics_overhead_pct      %.1f (bound 25)\n", smp
		printf "attribution_overhead_pct  %.1f (bound 5)\n", atp
		if (trp > 200 || smp > 25) { print "smoke: observability overhead out of bounds" > "/dev/stderr"; exit 1 }
		if (atp > 5) { print "smoke: attribution overhead above 5% budget" > "/dev/stderr"; exit 1 }
	}' "$run"
	exit 0
fi

go test -run '^$' -bench . -benchmem -count 5 . | tee "$run"

{
	echo "### $date commit $commit"
	cat "$run"
	echo
} >> "$raw"

# Cold-vs-warm regeneration: the same figure set twice, in fresh processes,
# sharing one initially-empty disk cache. The warm run must render
# byte-identical markdown (the cache is an optimization, never an input)
# and its speedup is the headline number of the persistent run cache.
expbin=$(mktemp)
cachedir=$(mktemp -d)
cold_out=$(mktemp)
warm_out=$(mktemp)
trap 'rm -rf "$run" "$expbin" "$cachedir" "$cold_out" "$warm_out"' EXIT
go build -o "$expbin" ./cmd/experiments
t0=$(date +%s%N)
"$expbin" -exp fig7,fig10 -scale quick -cachedir "$cachedir" -manifest none -out "$cold_out" 2>/dev/null
t1=$(date +%s%N)
"$expbin" -exp fig7,fig10 -scale quick -cachedir "$cachedir" -manifest none -out "$warm_out" 2>/dev/null
t2=$(date +%s%N)
cmp -s "$cold_out" "$warm_out" || {
	echo "bench: warm regeneration output differs from cold run" >&2
	exit 1
}
speedup=$(awk -v c=$((t1 - t0)) -v w=$((t2 - t1)) \
	'BEGIN { printf "%.1f", c / (w > 0 ? w : 1) }')
echo "warm_regen_speedup ${speedup}x (cold $(((t1 - t0) / 1000000))ms, warm $(((t2 - t1) / 1000000))ms)" >&2

# Service SLO round: nocserved on a loopback port, nocload driving enough
# repeats that the warm cache path shows up in the hit ratio. The server's
# log and the JSON report are temp files; the three headline fields are
# folded into the history entry below.
servebin=$(mktemp)
loadbin=$(mktemp)
servelog=$(mktemp)
servejson=$(mktemp)
servecache=$(mktemp -d)
trap 'rm -rf "$run" "$expbin" "$cachedir" "$cold_out" "$warm_out" "$servebin" "$loadbin" "$servelog" "$servejson" "$servecache"' EXIT
go build -o "$servebin" ./cmd/nocserved
go build -o "$loadbin" ./cmd/nocload
"$servebin" -addr 127.0.0.1:0 -cachedir "$servecache" 2> "$servelog" &
servepid=$!
i=0
until serveurl=$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$servelog" | head -1) && [ -n "$serveurl" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "bench: nocserved did not start" >&2; cat "$servelog" >&2; exit 1; }
	sleep 0.1
done
"$loadbin" -url "$serveurl" -n 16 -c 4 -exp fig1,fig2 -scale quick -json > "$servejson"
kill "$servepid" 2>/dev/null || true
serve_field() {
	sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*\([0-9.eE+-]*\).*/\1/p" "$servejson" | head -1
}
serve_p50=$(serve_field serve_p50_ms)
serve_p99=$(serve_field serve_p99_ms)
serve_hit=$(serve_field serve_hit_ratio)
echo "serve_p50_ms ${serve_p50}  serve_p99_ms ${serve_p99}  serve_hit_ratio ${serve_hit}" >&2

entry=$(awk -v commit="$commit" -v date="$date" -v speedup="$speedup" \
	-v serve_p50="$serve_p50" -v serve_p99="$serve_p99" -v serve_hit="$serve_hit" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
	ns[name] = ns[name] " " $3
	for (i = 4; i <= NF; i++) {
		if ($(i+1) == "B/op") b[name] = b[name] " " $i
		if ($(i+1) == "allocs/op") a[name] = a[name] " " $i
		if ($(i+1) == "evals/s") ev[name] = ev[name] " " $i
		if ($(i+1) == "cache_hit_ratio") hr[name] = hr[name] " " $i
	}
	if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
function median(s,   v, m) {
	m = split(s, v, " ")
	asort_simple(v, m)
	return (m % 2) ? v[(m + 1) / 2] : (v[m / 2] + v[m / 2 + 1]) / 2
}
function asort_simple(v, m,   i, j, t) {
	for (i = 2; i <= m; i++)
		for (j = i; j > 1 && v[j - 1] + 0 > v[j] + 0; j--) {
			t = v[j]; v[j] = v[j - 1]; v[j - 1] = t
		}
}
END {
	printf "{\"commit\": \"%s\", \"date\": \"%s\", ", commit, date
	if (speedup != "")
		printf "\"warm_regen_speedup\": %s, ", speedup
	if (serve_p50 != "" && serve_p99 != "")
		printf "\"serve_p50_ms\": %s, \"serve_p99_ms\": %s, ", serve_p50, serve_p99
	if (serve_hit != "")
		printf "\"serve_hit_ratio\": %s, ", serve_hit
	if ("BenchmarkDSEGeneration" in ev)
		printf "\"dse_evals_per_sec\": %g, ", median(ev["BenchmarkDSEGeneration"])
	if ("BenchmarkDSEGeneration" in hr)
		printf "\"dse_cache_hit_ratio\": %g, ", median(hr["BenchmarkDSEGeneration"])
	if ("BenchmarkCheckpointRestore" in ns)
		printf "\"ckpt_restore_ns_per_op\": %g, ", median(ns["BenchmarkCheckpointRestore"])
	if ("BenchmarkFaultSweep" in ns)
		printf "\"fault_sweep_ns_per_op\": %g, ", median(ns["BenchmarkFaultSweep"])
	if ("BenchmarkTraceDecode/batch" in ns)
		printf "\"trace_decode_entries_per_sec\": %g, ", 65536 * 1e9 / median(ns["BenchmarkTraceDecode/batch"])
	if ("BenchmarkWarmRestoreSeek" in ns)
		printf "\"warm_restore_seek_ns_per_op\": %g, ", median(ns["BenchmarkWarmRestoreSeek"])
	if ("BenchmarkTableBuild1024" in ns)
		printf "\"table_build_1024_ns_per_op\": %g, ", median(ns["BenchmarkTableBuild1024"])
	if ("BenchmarkNetworkCycle32x32" in ns)
		printf "\"cycle_ns_per_router_32x32\": %.1f, ", median(ns["BenchmarkNetworkCycle32x32"]) / 1024
	if ("BenchmarkNetworkCycle" in ns) {
		base = median(ns["BenchmarkNetworkCycle"])
		if (base > 0 && "BenchmarkNetworkCycleTraced" in ns)
			printf "\"tracer_overhead_pct\": %.1f, ", \
				100 * (median(ns["BenchmarkNetworkCycleTraced"]) - base) / base
		if (base > 0 && "BenchmarkNetworkCycleSampled" in ns)
			printf "\"metrics_overhead_pct\": %.1f, ", \
				100 * (median(ns["BenchmarkNetworkCycleSampled"]) - base) / base
		if ("BenchmarkNetworkCycleNoAttr" in ns && median(ns["BenchmarkNetworkCycleNoAttr"]) > 0)
			printf "\"attribution_overhead_pct\": %.1f, ", \
				100 * (base - median(ns["BenchmarkNetworkCycleNoAttr"])) / median(ns["BenchmarkNetworkCycleNoAttr"])
	}
	printf "\"benchmarks\": ["
	for (i = 1; i <= n; i++) {
		nm = order[i]
		printf "{\"name\": \"%s\", \"ns_per_op\": %g, \"bytes_per_op\": %g, \"allocs_per_op\": %g}%s", \
			nm, median(ns[nm]), median(b[nm]), median(a[nm]), (i < n) ? ", " : ""
	}
	printf "]}\n"
}' "$run")

tmp=$(mktemp)
if [ -s "$out" ]; then
	case "$(head -c 1 "$out")" in
	"[")
		# Existing history: reopen it and append this run.
		{ sed '$d' "$out" | sed '$s/$/,/'; printf '%s\n]\n' "$entry"; } > "$tmp"
		;;
	*)
		# Legacy single-object file: fold it in as the first history entry.
		{
			echo "["
			tr '\n' ' ' < "$out" | sed -e 's/[[:space:]]\{2,\}/ /g' -e 's/[[:space:]]*$/,/'
			echo
			printf '%s\n]\n' "$entry"
		} > "$tmp"
		;;
	esac
else
	printf '[\n%s\n]\n' "$entry" > "$tmp"
fi
mv "$tmp" "$out"

echo "appended to $raw and $out" >&2
