#!/bin/sh
# bench.sh — run the simulator micro-benchmarks and record the results.
#
# Runs every benchmark in the repo root (BenchmarkNetworkCycle,
# BenchmarkHeteroNetworkCycle, BenchmarkCMPCycle, ...) with -benchmem and
# -count 5, keeps the raw `go test` output next to the JSON, and distills
# the per-benchmark medians into BENCH_noc.json so kernel-performance PRs
# can diff before/after numbers mechanically. The fault-injection sweep
# (BenchmarkFaultSweep: the full degradation experiment at bench scale)
# is additionally surfaced as a top-level "fault_sweep_ns_per_op" field so
# fault-stack regressions are one jq expression away.
#
# Usage: scripts/bench.sh [output.json]    (default BENCH_noc.json)
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_noc.json}
raw=${out%.json}.txt

go test -run '^$' -bench . -benchmem -count 5 . | tee "$raw"

awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
	ns[name] = ns[name] " " $3
	for (i = 4; i <= NF; i++) {
		if ($(i+1) == "B/op") b[name] = b[name] " " $i
		if ($(i+1) == "allocs/op") a[name] = a[name] " " $i
	}
	if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
function median(s,   v, m) {
	m = split(s, v, " ")
	asort_simple(v, m)
	return (m % 2) ? v[(m + 1) / 2] : (v[m / 2] + v[m / 2 + 1]) / 2
}
function asort_simple(v, m,   i, j, t) {
	for (i = 2; i <= m; i++)
		for (j = i; j > 1 && v[j - 1] + 0 > v[j] + 0; j--) {
			t = v[j]; v[j] = v[j - 1]; v[j - 1] = t
		}
}
END {
	printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n", commit, date
	if ("BenchmarkFaultSweep" in ns)
		printf "  \"fault_sweep_ns_per_op\": %g,\n", median(ns["BenchmarkFaultSweep"])
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		nm = order[i]
		printf "    {\"name\": \"%s\", \"ns_per_op\": %g, \"bytes_per_op\": %g, \"allocs_per_op\": %g}%s\n", \
			nm, median(ns[nm]), median(b[nm]), median(a[nm]), (i < n) ? "," : ""
	}
	printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $raw and $out" >&2
