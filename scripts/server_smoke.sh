#!/bin/sh
# server_smoke.sh — end-to-end smoke test of the hardened run server.
#
# Drives real nocserved processes over HTTP and checks the four
# hardening stories the unit tests pin in-process:
#
#   1. chaos soak: nocload succeeds against a server with injected
#      worker panics and slow/corrupt disk reads (the client retries,
#      the server isolates crashes, corrupt cache reads degrade to
#      misses);
#   2. warm cache-hit path: an identical repeat request is answered
#      from the cache with zero simulation work (from_cache true);
#   3. graceful drain: SIGTERM while a long run is in flight suspends
#      it as a NOCCKPT01 checkpoint instead of discarding the work;
#   4. resume-after-kill equivalence: a restarted server resumes the
#      checkpoint and produces the same fingerprint as an uninterrupted
#      -nocache regeneration of the same experiment.
#
# The in-process acceptance tests (go test -race ./internal/serve ...)
# run as a separate CI step; this script is pure black-box.
set -eu
cd "$(dirname "$0")/.."

work=$(mktemp -d)
trap 'kill $(cat "$work"/*.pid 2>/dev/null) 2>/dev/null || true; rm -rf "$work"' EXIT

servebin="$work/nocserved"
loadbin="$work/nocload"
expbin="$work/experiments"
go build -o "$servebin" ./cmd/nocserved
go build -o "$loadbin" ./cmd/nocload
go build -o "$expbin" ./cmd/experiments

# start_server <name> <args...> — launches nocserved on a free port and
# sets $url; the PID is recorded for cleanup and kill-phases.
start_server() {
	name=$1
	shift
	"$servebin" -addr 127.0.0.1:0 "$@" 2> "$work/$name.log" &
	echo $! > "$work/$name.pid"
	i=0
	until url=$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$work/$name.log" | head -1) && [ -n "$url" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "server $name did not start"; cat "$work/$name.log"; exit 1; }
		sleep 0.1
	done
}

field() { # field <json-file> <name> — extract a scalar JSON field
	sed -n "s/.*\"$2\"[[:space:]]*:[[:space:]]*\"\{0,1\}\([^\",}]*\)\"\{0,1\}[,}].*/\1/p" "$1" | head -1
}

echo "== 1. chaos soak: worker panics + slow/corrupt disk reads =="
start_server chaos -cachedir "$work/cache-chaos" \
	-chaos 'worker.panic=p0.3+panic+x3,disk.load.slow=d20ms+p0.5,disk.load.corrupt=corrupt+p0.3'
"$loadbin" -url "$url" -n 12 -c 3 -exp fig1,fig2 -scale quick -tenants a,b,c
kill "$(cat "$work/chaos.pid")" 2>/dev/null || true

echo "== 2. warm cache-hit path =="
start_server warm -cachedir "$work/cache-warm"
req='{"experiment":"fig1","scale":"quick","tenant":"smoke"}'
curl -sf "$url/run" -d "$req" > "$work/cold.json"
curl -sf "$url/run" -d "$req" > "$work/warm.json"
[ "$(field "$work/warm.json" from_cache)" = "true" ] || {
	echo "warm repeat was not served from cache"; cat "$work/warm.json"; exit 1
}
[ "$(field "$work/cold.json" fingerprint)" = "$(field "$work/warm.json" fingerprint)" ] || {
	echo "warm fingerprint differs from cold"; exit 1
}
curl -sf "$url/metrics" | grep -q 'serve_warm_requests_total 1' || {
	echo "serve_warm_requests_total not incremented"; exit 1
}
kill "$(cat "$work/warm.pid")" 2>/dev/null || true

echo "== 3. graceful drain: SIGTERM suspends the in-flight run =="
ckptdir="$work/ckpt"
start_server drain -cachedir "$work/cache-drain" -suspenddir "$ckptdir" \
	-drain-grace 100ms -suspend-grace 10s
# A full-scale fig1 run takes ~1s; SIGTERM lands mid-run.
longreq='{"experiment":"fig1","scale":"full","tenant":"smoke"}'
curl -s "$url/run" -d "$longreq" > "$work/suspended.json" &
curlpid=$!
sleep 0.4
kill -TERM "$(cat "$work/drain.pid")"
wait "$curlpid" || true
wait "$(cat "$work/drain.pid")" 2>/dev/null || true
grep -q suspended "$work/suspended.json" || {
	echo "draining server did not answer 503 suspended"; cat "$work/suspended.json"; exit 1
}
ls "$ckptdir"/*.ckpt > /dev/null 2>&1 || {
	echo "no checkpoint written by graceful drain"; exit 1
}

echo "== 4. resume-after-kill equivalence =="
start_server resume -cachedir "$work/cache-drain" -suspenddir "$ckptdir"
curl -sf "$url/run" -d "$longreq" > "$work/resumed.json"
curl -sf "$url/metrics" | grep -q 'serve_resumed_total [1-9]' || {
	echo "restarted server did not resume from the checkpoint"; exit 1
}
if ls "$ckptdir"/*.ckpt > /dev/null 2>&1; then
	echo "checkpoint not cleared after resumed run completed"; exit 1
fi
# Control: uninterrupted regeneration with both cache tiers off.
"$expbin" -exp fig1 -scale full -nocache -manifest "$work/ctrl.json" -out /dev/null 2>/dev/null
resumed_fp=$(field "$work/resumed.json" fingerprint)
ctrl_fp=$(sed -n 's/.*"fig1"[[:space:]]*:[[:space:]]*"\([0-9a-f]*\)".*/\1/p' "$work/ctrl.json" | head -1)
[ -n "$resumed_fp" ] && [ "$resumed_fp" = "$ctrl_fp" ] || {
	echo "resumed fingerprint $resumed_fp != uninterrupted control $ctrl_fp"; exit 1
}
kill "$(cat "$work/resume.pid")" 2>/dev/null || true

echo "server smoke: all phases passed"
