#!/bin/sh
# benchdiff.sh — compare the two most recent BENCH_noc.json entries and
# flag per-benchmark regressions beyond a threshold (default 20%).
#
# Informational by default: regressions are printed but the exit code
# stays zero, so the CI step surfaces drift without blocking merges.
# Forward flags to tighten it locally:
#
#   scripts/benchdiff.sh                      # report vs previous entry
#   scripts/benchdiff.sh -threshold 10        # stricter bar
#   scripts/benchdiff.sh -strict              # exit 1 on regressions
#   scripts/benchdiff.sh -in other.json       # alternate history file
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchdiff "$@"
